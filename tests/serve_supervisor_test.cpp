// ShardSupervisor process-management contracts: coordinated SIGTERM
// drain, crash restart, SIGHUP rollout fan-out, and the crash-loop
// give-up. Children are real forked processes restricted to syscalls and
// marker files; the test drives request_drain()/request_rollout() from a
// watcher thread while run() owns the main thread (glibc's fork locks
// make allocating in children safe even then, but the children below
// avoid it anyway).
//
// Deliberately NOT in the threaded/TSan label set: TSan and fork() do
// not mix (the child inherits a locked runtime), and the supervisor is
// thread-free by design — there is no data-race surface to scan.
#include <gtest/gtest.h>

#ifdef __unix__

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "serve/supervisor.h"

namespace {

using namespace sqvae;

/// Set by the child's SIGTERM/SIGHUP handlers; file-scope because signal
/// handlers cannot capture.
volatile std::sig_atomic_t g_child_term = 0;
volatile std::sig_atomic_t g_child_hup = 0;

void on_child_term(int) { g_child_term = 1; }
void on_child_hup(int) { g_child_hup = 1; }

/// Creates an empty marker file via open/close (async-signal-safe-ish
/// and allocation-free — children stick to syscalls).
void touch(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd >= 0) ::close(fd);
}

bool exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

bool eventually(const std::function<bool()>& pred, int seconds = 5) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

/// Unique-per-test scratch paths under the build dir.
std::string marker(const char* test, int shard, const char* kind) {
  return std::string("supervisor_test_") + test + "_" +
         std::to_string(shard) + "_" + kind + "_" +
         std::to_string(::getpid()) + ".marker";
}

class SupervisorTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : cleanup_) ::unlink(path.c_str());
  }
  std::string track(std::string path) {
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(SupervisorTest, DrainStopsEveryShardAndReturnsZero) {
  serve::SupervisorConfig config;
  config.workers = 3;
  serve::ShardSupervisor supervisor(config);

  std::vector<std::string> up_markers;
  std::vector<std::string> down_markers;
  for (int i = 0; i < config.workers; ++i) {
    up_markers.push_back(track(marker("drain", i, "up")));
    down_markers.push_back(track(marker("drain", i, "down")));
  }

  // Watcher: wait until every shard reports up, then request the drain.
  // The drain request is unconditional — run() must return even when the
  // wait times out, or the test would hang instead of failing.
  bool came_up = false;
  std::thread watcher([&] {
    came_up = eventually([&] {
      for (const std::string& m : up_markers) {
        if (!exists(m)) return false;
      }
      return true;
    });
    supervisor.request_drain();
  });

  const int status = supervisor.run([&](int shard) {
    std::signal(SIGTERM, on_child_term);
    touch(up_markers[static_cast<std::size_t>(shard)]);
    while (g_child_term == 0) ::usleep(10000);
    touch(down_markers[static_cast<std::size_t>(shard)]);
    return 0;
  });
  watcher.join();

  EXPECT_TRUE(came_up) << "shards never came up";
  EXPECT_EQ(status, 0);
  EXPECT_EQ(supervisor.restarts(), 0u);
  for (const std::string& m : down_markers) {
    EXPECT_TRUE(exists(m)) << m << ": shard exited without seeing SIGTERM";
  }
}

TEST_F(SupervisorTest, CrashedShardIsRestarted) {
  serve::SupervisorConfig config;
  config.workers = 1;
  config.restart_backoff_ms = 10;
  serve::ShardSupervisor supervisor(config);

  // First incarnation crashes immediately; the restarted incarnation
  // waits for the drain. The "second life" marker distinguishes them.
  const std::string first = track(marker("restart", 0, "first"));
  const std::string second = track(marker("restart", 0, "second"));

  bool came_up = false;
  std::thread watcher([&] {
    came_up = eventually([&] { return exists(second); });
    supervisor.request_drain();
  });

  const int status = supervisor.run([&](int shard) {
    (void)shard;
    if (!exists(first)) {
      touch(first);
      return 3;  // crash (non-zero, outside a drain)
    }
    std::signal(SIGTERM, on_child_term);
    touch(second);
    while (g_child_term == 0) ::usleep(10000);
    return 0;
  });
  watcher.join();

  EXPECT_TRUE(came_up) << "restarted shard never came up";
  EXPECT_EQ(status, 0);  // the drain generation exited clean
  EXPECT_GE(supervisor.restarts(), 1u);
}

TEST_F(SupervisorTest, RolloutFansHupToEveryShard) {
  serve::SupervisorConfig config;
  config.workers = 2;
  serve::ShardSupervisor supervisor(config);

  std::vector<std::string> up_markers;
  std::vector<std::string> hup_markers;
  for (int i = 0; i < config.workers; ++i) {
    up_markers.push_back(track(marker("rollout", i, "up")));
    hup_markers.push_back(track(marker("rollout", i, "hup")));
  }

  bool came_up = false;
  bool rolled = false;
  std::thread watcher([&] {
    came_up = eventually([&] {
      for (const std::string& m : up_markers) {
        if (!exists(m)) return false;
      }
      return true;
    });
    if (came_up) {
      supervisor.request_rollout();
      rolled = eventually([&] {
        for (const std::string& m : hup_markers) {
          if (!exists(m)) return false;
        }
        return true;
      });
    }
    supervisor.request_drain();
  });

  const int status = supervisor.run([&](int shard) {
    std::signal(SIGTERM, on_child_term);
    std::signal(SIGHUP, on_child_hup);
    touch(up_markers[static_cast<std::size_t>(shard)]);
    bool hupped = false;
    while (g_child_term == 0) {
      if (g_child_hup != 0 && !hupped) {
        hupped = true;
        touch(hup_markers[static_cast<std::size_t>(shard)]);
      }
      ::usleep(10000);
    }
    return 0;
  });
  watcher.join();

  EXPECT_TRUE(came_up) << "shards never came up";
  EXPECT_TRUE(rolled) << "rollout did not reach every shard";
  EXPECT_EQ(status, 0);
  for (const std::string& m : hup_markers) EXPECT_TRUE(exists(m));
}

TEST_F(SupervisorTest, CrashLoopGivesUpWithFailureStatus) {
  serve::SupervisorConfig config;
  config.workers = 1;
  config.max_fast_crashes = 3;
  config.restart_backoff_ms = 1;  // keep the linear backoff fast in tests
  serve::ShardSupervisor supervisor(config);

  // Every incarnation crashes instantly: the supervisor must give up
  // after max_fast_crashes and report failure, not spin forever.
  const int status =
      supervisor.run([](int) { return 7; }, /*error=*/nullptr);
  EXPECT_EQ(status, 1);
  EXPECT_GE(supervisor.restarts(), 2u);
}

TEST_F(SupervisorTest, NonZeroDrainExitPropagates) {
  serve::SupervisorConfig config;
  config.workers = 2;
  serve::ShardSupervisor supervisor(config);

  std::vector<std::string> up_markers;
  for (int i = 0; i < config.workers; ++i) {
    up_markers.push_back(track(marker("dirty", i, "up")));
  }
  bool came_up = false;
  std::thread watcher([&] {
    came_up = eventually([&] {
      return exists(up_markers[0]) && exists(up_markers[1]);
    });
    supervisor.request_drain();
  });

  // Shard 1 exits dirty during the drain: run() must return non-zero.
  const int status = supervisor.run([&](int shard) {
    std::signal(SIGTERM, on_child_term);
    touch(up_markers[static_cast<std::size_t>(shard)]);
    while (g_child_term == 0) ::usleep(10000);
    return shard == 1 ? 5 : 0;
  });
  watcher.join();

  EXPECT_TRUE(came_up) << "shards never came up";
  EXPECT_NE(status, 0);
}

}  // namespace

#else  // !__unix__

TEST(SupervisorTest, SkippedOnNonUnix) { GTEST_SKIP(); }

#endif  // __unix__
