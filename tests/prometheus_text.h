// Prometheus text-exposition (format 0.0.4) validator shared by the
// serving test suites. Header-only on purpose: tests/*.cpp are globbed
// into one binary each, so shared helpers live in headers.
//
// validate_prometheus_text() checks the structural rules a scraper
// relies on and returns the first violation as a message ("" = valid):
//
//   * line grammar — every line is a comment, a "# HELP <name> <text>",
//     a "# TYPE <name> <type>" with a known type, or a sample
//     "<name>[{labels}] <value>";
//   * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names match
//     [a-zA-Z_][a-zA-Z0-9_]*, label values are double-quoted with only
//     \\ \" \n escapes;
//   * every sampled family has HELP and TYPE, TYPE precedes the
//     family's first sample, and a family's lines are contiguous;
//   * histogram families: per label set, le buckets are monotonically
//     non-decreasing in value with strictly increasing bounds ending at
//     le="+Inf", and _count equals the +Inf bucket.
#pragma once

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace prom_test {

struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
  bool value_is_inf = false;
};

inline bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    if (i == 0 ? !alpha : !(alpha || (c >= '0' && c <= '9'))) return false;
  }
  return true;
}

inline bool valid_label_name(const std::string& s) {
  return valid_metric_name(s) && s.find(':') == std::string::npos;
}

/// Family a sample belongs to: histogram/summary suffixes fold into the
/// base name.
inline std::string family_of(const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return name.substr(0, name.size() - s.size());
    }
  }
  return name;
}

/// Parses one sample line into `out`; returns "" or an error.
inline std::string parse_sample_line(const std::string& line, Sample* out) {
  std::size_t pos = 0;
  while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
  out->name = line.substr(0, pos);
  if (!valid_metric_name(out->name)) {
    return "bad metric name in: " + line;
  }
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      std::size_t eq = line.find('=', pos);
      if (eq == std::string::npos) return "label without '=' in: " + line;
      const std::string label = line.substr(pos, eq - pos);
      if (!valid_label_name(label)) return "bad label name in: " + line;
      if (eq + 1 >= line.size() || line[eq + 1] != '"') {
        return "label value not quoted in: " + line;
      }
      std::string value;
      std::size_t i = eq + 2;
      for (; i < line.size() && line[i] != '"'; ++i) {
        if (line[i] == '\\') {
          if (i + 1 >= line.size()) return "dangling escape in: " + line;
          const char e = line[i + 1];
          if (e != '\\' && e != '"' && e != 'n') {
            return "bad escape in label value in: " + line;
          }
          value += e == 'n' ? '\n' : e;
          ++i;
          continue;
        }
        value += line[i];
      }
      if (i >= line.size()) return "unterminated label value in: " + line;
      out->labels[label] = value;
      pos = i + 1;
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') {
      return "unterminated label set in: " + line;
    }
    ++pos;
  }
  if (pos >= line.size() || line[pos] != ' ') {
    return "missing value separator in: " + line;
  }
  const std::string value_text = line.substr(pos + 1);
  if (value_text == "+Inf" || value_text == "Inf") {
    out->value_is_inf = true;
    return "";
  }
  char* end = nullptr;
  out->value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str() || *end != '\0') {
    return "unparsable value in: " + line;
  }
  return "";
}

inline std::string validate_prometheus_text(const std::string& body) {
  std::set<std::string> helped;
  std::map<std::string, std::string> types;
  std::set<std::string> closed_families;  // families whose run has ended
  std::string current_family;
  // Histogram state per (family, labels-minus-le) group, in order.
  struct BucketSeries {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    bool saw_inf = false;
    double inf_value = 0.0;
    bool saw_count = false;
    double count_value = 0.0;
    bool saw_sum = false;
  };
  std::map<std::string, BucketSeries> histograms;

  std::size_t start = 0;
  while (start <= body.size()) {
    const std::size_t nl = body.find('\n', start);
    const std::string line = body.substr(
        start, nl == std::string::npos ? std::string::npos : nl - start);
    start = nl == std::string::npos ? body.size() + 1 : nl + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::size_t sp1 = line.find(' ');
      if (sp1 != 1) return "comment without space: " + line;
      const std::size_t sp2 = line.find(' ', 2);
      const std::string keyword =
          sp2 == std::string::npos ? line.substr(2) : line.substr(2, sp2 - 2);
      if (keyword != "HELP" && keyword != "TYPE") continue;  // plain comment
      if (sp2 == std::string::npos) return "truncated " + keyword + " line";
      const std::size_t sp3 = line.find(' ', sp2 + 1);
      const std::string name =
          sp3 == std::string::npos ? line.substr(sp2 + 1)
                                   : line.substr(sp2 + 1, sp3 - sp2 - 1);
      if (!valid_metric_name(name)) {
        return "bad metric name on " + keyword + " line: " + line;
      }
      if (keyword == "HELP") {
        if (!helped.insert(name).second) return "duplicate HELP for " + name;
      } else {
        const std::string type =
            sp3 == std::string::npos ? "" : line.substr(sp3 + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return "unknown TYPE '" + type + "' for " + name;
        }
        if (types.count(name) != 0) return "duplicate TYPE for " + name;
        types[name] = type;
      }
      continue;
    }
    Sample sample;
    const std::string err = parse_sample_line(line, &sample);
    if (!err.empty()) return err;
    const std::string family = family_of(sample.name);
    if (family != current_family) {
      if (!current_family.empty()) closed_families.insert(current_family);
      if (closed_families.count(family) != 0) {
        return "family " + family + " is not contiguous";
      }
      current_family = family;
    }
    if (types.count(family) == 0) {
      return "sample before TYPE (or untyped family): " + sample.name;
    }
    if (helped.count(family) == 0) {
      return "sampled family without HELP: " + family;
    }
    if (types[family] == "histogram") {
      std::string group = family + "{";
      for (const auto& [k, v] : sample.labels) {
        if (k != "le") group += k + "=" + v + ",";
      }
      group += "}";
      BucketSeries& series = histograms[group];
      const bool is_bucket =
          sample.name.size() > 7 &&
          sample.name.compare(sample.name.size() - 7, 7, "_bucket") == 0;
      if (is_bucket) {
        const auto le = sample.labels.find("le");
        if (le == sample.labels.end()) {
          return "histogram bucket without le: " + line;
        }
        if (series.saw_inf) return "bucket after +Inf in " + group;
        if (le->second == "+Inf") {
          series.saw_inf = true;
          series.inf_value = sample.value;
          if (!series.buckets.empty() &&
              sample.value < series.buckets.back().second) {
            return "+Inf bucket below the previous bucket in " + group;
          }
        } else {
          char* end = nullptr;
          const double bound = std::strtod(le->second.c_str(), &end);
          if (end == le->second.c_str() || *end != '\0') {
            return "unparsable le bound: " + le->second;
          }
          if (!series.buckets.empty()) {
            if (bound <= series.buckets.back().first) {
              return "le bounds not increasing in " + group;
            }
            if (sample.value < series.buckets.back().second) {
              return "bucket counts not monotonic in " + group;
            }
          }
          series.buckets.emplace_back(bound, sample.value);
        }
      } else if (sample.name == family + "_count") {
        series.saw_count = true;
        series.count_value = sample.value;
      } else if (sample.name == family + "_sum") {
        series.saw_sum = true;
      } else {
        return "unexpected sample in histogram family: " + sample.name;
      }
    }
  }
  for (const auto& [group, series] : histograms) {
    if (!series.saw_inf) return "histogram without +Inf bucket: " + group;
    if (!series.saw_count) return "histogram without _count: " + group;
    if (!series.saw_sum) return "histogram without _sum: " + group;
    if (series.count_value != series.inf_value) {
      return "histogram _count != +Inf bucket: " + group;
    }
  }
  return "";
}

}  // namespace prom_test
