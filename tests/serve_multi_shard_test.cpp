// Multi-shard serving contracts, in-process: two EventLoopServers share
// one port via SO_REUSEPORT (the same topology the supervisor builds from
// forked processes), every connection gets byte-identical responses for
// identical requests no matter which shard the kernel picked, accepted
// connections are conserved across shards, and the in-band Prometheus
// scrape carries per-shard labels and parses cleanly.
#include <gtest/gtest.h>

#ifdef __linux__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "prometheus_text.h"
#include "serve/event_loop.h"
#include "serve/loaded_model.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/stats.h"

namespace {

using namespace sqvae;

/// Blocking line client (same shape as serve_event_loop_test's).
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void send_all(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }

  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  std::vector<std::string> read_lines(std::size_t lines) {
    std::vector<std::string> out;
    std::string buf;
    char chunk[4096];
    while (out.size() < lines) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while (out.size() < lines && (nl = buf.find('\n')) != std::string::npos) {
        out.push_back(buf.substr(0, nl));
        buf.erase(0, nl + 1);
      }
    }
    return out;
  }

  /// Reads whole lines until one equals `sentinel` (inclusive) or EOF.
  std::vector<std::string> read_until_line(const std::string& sentinel) {
    std::vector<std::string> out;
    std::string buf;
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return out;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = buf.find('\n')) != std::string::npos) {
        out.push_back(buf.substr(0, nl));
        buf.erase(0, nl + 1);
        if (out.back() == sentinel) return out;
      }
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// One in-process "shard": its own stats, service, and event loop, all
/// over a shared registry — the same composition each forked shard
/// process builds, minus the fork.
struct Shard {
  serve::ServerStats stats;
  std::unique_ptr<serve::InferenceService> service;
  std::unique_ptr<serve::EventLoopServer> server;
  std::thread loop;
  int status = -1;

  void stop() {
    if (server != nullptr && loop.joinable()) {
      server->request_stop();
      loop.join();
    }
    if (service != nullptr) service->shutdown();
  }
};

class MultiShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::signal(SIGPIPE, SIG_IGN);
    spec_.kind = "sq-ae";
    spec_.input_dim = 16;
    spec_.patches = 2;
    spec_.entangling_layers = 2;
    std::string error;
    model_ = serve::build_model(spec_, &error);
    ASSERT_NE(model_, nullptr) << error;
    registry_.publish("default",
                      serve::LoadedModel::from_model(spec_, *model_));
  }

  /// Starts `count` shards on one shared SO_REUSEPORT port: shard 0 binds
  /// an ephemeral port with reuse_port on, the rest bind the resolved
  /// port. Mirrors the supervisor's layout with in-process loops.
  void start_shards(int count) {
    serve::ServeConfig config;
    config.threads = 2;
    config.shed_on_full = true;
    for (int i = 0; i < count; ++i) {
      // unique_ptr: ServerStats holds atomics, so Shard cannot move.
      shards_.push_back(std::make_unique<Shard>());
      Shard& shard = *shards_.back();
      shard.service = std::make_unique<serve::InferenceService>(
          registry_, config, &shard.stats);
      serve::EventLoopConfig loop_config;
      loop_config.reuse_port = true;
      loop_config.shard = i;
      loop_config.port = i == 0 ? 0 : port_;
      shard.server = std::make_unique<serve::EventLoopServer>(
          *shard.service, loop_config, shard.stats);
      std::string error;
      ASSERT_TRUE(shard.server->start(&error)) << "shard " << i << ": "
                                               << error;
      if (i == 0) port_ = shard.server->port();
      Shard* s = &shard;
      shard.loop = std::thread([s] { s->status = s->server->run(); });
    }
  }

  void TearDown() override {
    for (auto& shard : shards_) shard->stop();
    for (auto& shard : shards_) {
      shard->service.reset();
      shard->server.reset();
    }
  }

  std::string request_line(int id, std::uint64_t seed,
                           const char* op = "encode") const {
    std::string x = "[";
    for (std::size_t i = 0; i < spec_.input_dim; ++i) {
      if (i > 0) x += ", ";
      x += std::to_string(0.1 + 0.05 * static_cast<double>(i));
    }
    x += "]";
    return "{\"op\": \"" + std::string(op) +
           "\", \"id\": " + std::to_string(id) +
           ", \"seed\": " + std::to_string(seed) + ", \"x\": " + x + "}\n";
  }

  std::uint64_t summed(std::uint64_t (*get)(const serve::ServerStats&)) {
    std::uint64_t total = 0;
    for (auto& shard : shards_) total += get(shard->stats);
    return total;
  }

  serve::ModelSpec spec_;
  std::unique_ptr<models::Autoencoder> model_;
  serve::ModelRegistry registry_;
  std::vector<std::unique_ptr<Shard>> shards_;
  int port_ = 0;
};

TEST_F(MultiShardTest, IdenticalRequestsAnswerByteIdenticallyOnEveryShard) {
  start_shards(2);

  // Many short-lived connections so the kernel's SO_REUSEPORT hash
  // spreads them across both shards; each sends the same two requests.
  constexpr int kConns = 32;
  const std::string burst = request_line(1, 42) + request_line(2, 43);
  std::vector<std::string> first_responses;
  for (int c = 0; c < kConns; ++c) {
    Client client(port_);
    ASSERT_TRUE(client.connected()) << "conn " << c;
    client.send_all(burst);
    client.shutdown_write();
    const std::vector<std::string> lines = client.read_lines(2);
    ASSERT_EQ(lines.size(), 2u) << "conn " << c;
    if (c == 0) {
      first_responses = lines;
      EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos) << lines[0];
    } else {
      // The sharding contract: any shard answers bit-identically.
      EXPECT_EQ(lines, first_responses) << "conn " << c;
    }
  }

  // Connection conservation: every accept landed on exactly one shard.
  const std::uint64_t accepted =
      summed([](const serve::ServerStats& s) -> std::uint64_t {
        return s.connections_accepted.load();
      });
  EXPECT_EQ(accepted, static_cast<std::uint64_t>(kConns));
  // With 32 connections the kernel virtually always uses both shards,
  // but that is a kernel property, not our contract — assert only that
  // per-shard counts sum correctly, never the split.
}

TEST_F(MultiShardTest, InBandPrometheusScrapeCarriesShardLabels) {
  start_shards(2);

  // Drive some traffic through both endpoints on many connections.
  for (int c = 0; c < 16; ++c) {
    Client client(port_);
    ASSERT_TRUE(client.connected());
    client.send_all(request_line(1, 7) + request_line(2, 8, "reconstruct"));
    client.shutdown_write();
    ASSERT_EQ(client.read_lines(2).size(), 2u);
  }

  // Scrape every shard directly (in-band scrapes follow the same kernel
  // balancing, so scrape per-shard state through a fresh connection per
  // attempt until both shards have been seen).
  std::set<int> seen;
  std::vector<std::string> bodies;
  for (int attempt = 0; attempt < 256 && seen.size() < 2; ++attempt) {
    Client client(port_);
    ASSERT_TRUE(client.connected());
    client.send_all("{\"op\": \"stats\", \"format\": \"prometheus\"}\n");
    client.shutdown_write();
    const std::vector<std::string> lines = client.read_until_line("# EOF");
    ASSERT_FALSE(lines.empty());
    ASSERT_EQ(lines.back(), "# EOF");
    std::string body;
    for (const std::string& line : lines) body += line + "\n";
    for (int shard = 0; shard < 2; ++shard) {
      const std::string label =
          "sqvae_model_generation{shard=\"" + std::to_string(shard) + "\"}";
      if (body.find(label) != std::string::npos &&
          seen.insert(shard).second) {
        bodies.push_back(body);
      }
    }
  }
  ASSERT_EQ(seen.size(), 2u)
      << "kernel never routed a scrape to the second shard";

  std::uint64_t encode_total = 0;
  std::uint64_t reconstruct_total = 0;
  for (const std::string& body : bodies) {
    // Full text-format compliance on a live scrape.
    EXPECT_EQ(prom_test::validate_prometheus_text(body), "") << body;
    // Per-endpoint attribution is present and parseable.
    for (const char* endpoint : {"encode", "reconstruct"}) {
      const std::string needle = std::string(
          "sqvae_endpoint_requests_total{shard=\"") +
          (body.find("shard=\"0\"") != std::string::npos ? "0" : "1") +
          "\",endpoint=\"" + endpoint + "\"} ";
      const std::size_t at = body.find(needle);
      ASSERT_NE(at, std::string::npos) << endpoint << "\n" << body;
      const std::uint64_t count = std::stoull(body.substr(at + needle.size()));
      (std::string(endpoint) == "encode" ? encode_total : reconstruct_total) +=
          count;
    }
  }
  // Attribution conservation: the 16 encode and 16 reconstruct requests
  // all landed in the right per-endpoint counter, summed across shards.
  // (The scrapes happened after all 32 data connections completed, so the
  // counts are stable; the extra stats requests are not endpoint
  // requests.)
  EXPECT_EQ(encode_total, 16u);
  EXPECT_EQ(reconstruct_total, 16u);
}

TEST_F(MultiShardTest, SecondShardCannotBindWithoutReusePort) {
  start_shards(1);
  // A second server without reuse_port must fail to take the same port —
  // proof the first really is holding it and SO_REUSEPORT is what makes
  // sharing possible.
  serve::ServerStats stats;
  serve::ServeConfig config;
  config.threads = 1;
  config.shed_on_full = true;
  serve::InferenceService service(registry_, config, &stats);
  serve::EventLoopConfig loop_config;
  loop_config.port = port_;
  loop_config.reuse_port = false;
  serve::EventLoopServer server(service, loop_config, stats);
  std::string error;
  EXPECT_FALSE(server.start(&error));
  EXPECT_FALSE(error.empty());
  service.shutdown();
}

}  // namespace

#else  // !__linux__

TEST(MultiShardTest, SkippedOnNonLinux) { GTEST_SKIP(); }

#endif  // __linux__
