// Serving subsystem: LoadedModel snapshots, the registry's generation
// hot-swap, BatchQueue coalescing, InferenceService endpoint semantics,
// the line protocol, and the inference-only checkpoint load path
// (models::load_params_only).
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "models/checkpoint.h"
#include "models/classical.h"
#include "models/scalable_quantum.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/service.h"

namespace {

using namespace sqvae;

serve::ModelSpec small_sq_ae_spec() {
  serve::ModelSpec spec;
  spec.kind = "sq-ae";
  spec.input_dim = 16;
  spec.patches = 2;
  spec.entangling_layers = 2;
  return spec;
}

serve::ModelSpec small_vae_spec() {
  serve::ModelSpec spec;
  spec.kind = "classical-vae";
  spec.input_dim = 16;
  spec.latent = 4;
  return spec;
}

std::vector<double> ramp(std::size_t n, double scale = 1.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = scale * (0.1 + 0.05 * static_cast<double>(i));
  }
  return v;
}

Matrix row_matrix(const std::vector<double>& v) {
  Matrix m(1, v.size());
  for (std::size_t i = 0; i < v.size(); ++i) m(0, i) = v[i];
  return m;
}

// ---- load_params_only -----------------------------------------------------

TEST(LoadParamsOnly, AcceptsV1AndV2WithoutAttachments) {
  Rng rng(3);
  models::ClassicalAe source(models::classical_config_64(4), rng);
  models::ClassicalAe target(models::classical_config_64(4), rng);

  // v1 round trip.
  ASSERT_TRUE(
      models::load_params_only(models::checkpoint_to_text(source), target));
  EXPECT_EQ(models::checkpoint_to_text(source),
            models::checkpoint_to_text(target));

  // v2 with full Adam state: checkpoint_from_text_v2 *requires* an
  // attached optimizer for such a file, load_params_only must not.
  auto groups = source.param_groups(1e-3, 1e-3);
  nn::Adam adam(groups);
  models::TrainState state;
  state.optimizer = &adam;
  const std::string v2 = models::checkpoint_to_text_v2(source, state);

  models::ClassicalAe target2(models::classical_config_64(4), rng);
  models::TrainState no_attachments;
  EXPECT_FALSE(models::checkpoint_from_text_v2(v2, target2, no_attachments));
  EXPECT_TRUE(models::load_params_only(v2, target2));
  EXPECT_EQ(models::checkpoint_to_text(source),
            models::checkpoint_to_text(target2));
}

TEST(LoadParamsOnly, AcceptsV2WithMomentsStripped) {
  Rng rng(5);
  models::ClassicalAe source(models::classical_config_64(4), rng);
  // A v2 file saved without optimizer/rng attachments — the "moments
  // stripped" shape a checkpoint-size-conscious exporter would write.
  models::TrainState bare;
  bare.next_epoch = 7;
  const std::string v2 = models::checkpoint_to_text_v2(source, bare);

  models::ClassicalAe target(models::classical_config_64(4), rng);
  ASSERT_TRUE(models::load_params_only(v2, target));
  EXPECT_EQ(models::checkpoint_to_text(source),
            models::checkpoint_to_text(target));
}

TEST(LoadParamsOnly, RejectsCorruptInput) {
  Rng rng(7);
  models::ClassicalAe model(models::classical_config_64(4), rng);
  const std::string before = models::checkpoint_to_text(model);

  EXPECT_FALSE(models::load_params_only("sqvae-checkpoint 3\n0\n", model));
  EXPECT_FALSE(models::load_params_only("not a checkpoint", model));
  // Truncated parameter block.
  const std::string v1 = models::checkpoint_to_text(model);
  EXPECT_FALSE(
      models::load_params_only(v1.substr(0, v1.size() / 2), model));
  // Shape mismatch: a checkpoint of a different architecture.
  models::ClassicalAe other(models::classical_config_64(6), rng);
  EXPECT_FALSE(
      models::load_params_only(models::checkpoint_to_text(other), model));
  // v1 trailing garbage is still rejected.
  EXPECT_FALSE(models::load_params_only(v1 + " 1.5", model));

  EXPECT_EQ(before, models::checkpoint_to_text(model));  // untouched
}

// ---- LoadedModel / registry ----------------------------------------------

TEST(LoadedModel, ReplicaReproducesSnapshotParameters) {
  const serve::ModelSpec spec = small_sq_ae_spec();
  std::string error;
  auto source = serve::build_model(spec, &error);
  ASSERT_NE(source, nullptr) << error;

  auto loaded = serve::LoadedModel::from_checkpoint_text(
      spec, models::checkpoint_to_text(*source), &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->input_dim(), spec.input_dim);
  EXPECT_FALSE(loaded->is_generative());
  EXPECT_FALSE(loaded->stochastic());

  auto replica = loaded->make_replica();
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(models::checkpoint_to_text(*source),
            models::checkpoint_to_text(*replica));
}

TEST(LoadedModel, RejectsMismatchedCheckpoint) {
  const serve::ModelSpec spec = small_sq_ae_spec();
  std::string error;
  auto other = serve::build_model(small_vae_spec(), &error);
  ASSERT_NE(other, nullptr);
  auto loaded = serve::LoadedModel::from_checkpoint_text(
      spec, models::checkpoint_to_text(*other), &error);
  EXPECT_EQ(loaded, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(ModelRegistry, PublishBumpsGenerationAndSwaps) {
  serve::ModelRegistry registry;
  EXPECT_EQ(registry.generation("default"), 0u);
  EXPECT_EQ(registry.get("default").model, nullptr);

  const serve::ModelSpec spec = small_sq_ae_spec();
  std::string error;
  auto model = serve::build_model(spec, &error);
  const std::uint64_t g1 =
      registry.publish("default", serve::LoadedModel::from_model(spec, *model));
  const std::uint64_t g2 =
      registry.publish("default", serve::LoadedModel::from_model(spec, *model));
  EXPECT_LT(g1, g2);
  EXPECT_EQ(registry.generation("default"), g2);
  EXPECT_EQ(registry.names(), std::vector<std::string>{"default"});
}

// ---- BatchQueue -----------------------------------------------------------

TEST(BatchQueue, CoalescesSameKeyUpToMaxBatch) {
  serve::BatchQueue queue(/*max_batch=*/3, /*max_wait_us=*/0);
  std::vector<std::future<serve::InferenceResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(
        queue.push("m", serve::Endpoint::kEncode, {1.0}, 0));
  }
  std::vector<serve::Request> batch = queue.pop_batch();
  EXPECT_EQ(batch.size(), 3u);
  batch = queue.pop_batch();
  EXPECT_EQ(batch.size(), 2u);
  for (auto& b : batch) b.promise.set_value(serve::InferenceResult{});
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(BatchQueue, KeepsForeignKeysQueued) {
  serve::BatchQueue queue(/*max_batch=*/8, /*max_wait_us=*/0);
  auto f1 = queue.push("a", serve::Endpoint::kEncode, {1.0}, 0);
  auto f2 = queue.push("b", serve::Endpoint::kEncode, {1.0}, 0);
  auto f3 = queue.push("a", serve::Endpoint::kDecode, {1.0}, 0);
  auto f4 = queue.push("a", serve::Endpoint::kEncode, {2.0}, 0);

  std::vector<serve::Request> batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 2u);  // both ("a", encode) requests
  EXPECT_EQ(batch[0].model, "a");
  EXPECT_EQ(batch[1].input[0], 2.0);
  EXPECT_EQ(queue.depth(), 2u);  // ("b", encode) and ("a", decode) remain
}

TEST(BatchQueue, CloseDrainsAndRejects) {
  serve::BatchQueue queue(4, 0);
  auto queued = queue.push("m", serve::Endpoint::kEncode, {1.0}, 0);
  queue.close();
  // Already-queued work still pops; new pushes fail immediately.
  EXPECT_EQ(queue.pop_batch().size(), 1u);
  auto rejected = queue.push("m", serve::Endpoint::kEncode, {1.0}, 0);
  const serve::InferenceResult result = rejected.get();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(queue.pop_batch().size(), 0u);  // closed-and-drained sentinel
}

// ---- InferenceService -----------------------------------------------------

TEST(InferenceService, MatchesInProcessModel) {
  const serve::ModelSpec spec = small_sq_ae_spec();
  std::string error;
  auto model = serve::build_model(spec, &error);
  ASSERT_NE(model, nullptr);

  serve::ModelRegistry registry;
  registry.publish("default", serve::LoadedModel::from_model(spec, *model));
  serve::ServeConfig config;
  config.threads = 2;
  serve::InferenceService service(registry, config);

  const std::vector<double> x = ramp(spec.input_dim);
  const serve::InferenceResult recon = service.reconstruct(x, 1);
  ASSERT_TRUE(recon.ok) << recon.error;
  Rng unused(0);
  const Matrix expected = model->reconstruct(row_matrix(x), unused);
  ASSERT_EQ(recon.values.size(), expected.cols());
  for (std::size_t i = 0; i < recon.values.size(); ++i) {
    EXPECT_EQ(recon.values[i], expected(0, i)) << i;  // bitwise
  }

  const serve::InferenceResult enc = service.encode(x, 2);
  ASSERT_TRUE(enc.ok);
  const Matrix latent = model->encode_values(row_matrix(x));
  ASSERT_EQ(enc.values.size(), latent.cols());
  for (std::size_t i = 0; i < enc.values.size(); ++i) {
    EXPECT_EQ(enc.values[i], latent(0, i)) << i;
  }

  const serve::InferenceResult dec = service.decode(enc.values, 3);
  ASSERT_TRUE(dec.ok);
  EXPECT_EQ(dec.values.size(), spec.input_dim);
}

TEST(InferenceService, ErrorPaths) {
  const serve::ModelSpec spec = small_sq_ae_spec();
  std::string error;
  auto model = serve::build_model(spec, &error);
  serve::ModelRegistry registry;
  registry.publish("default", serve::LoadedModel::from_model(spec, *model));
  serve::ServeConfig config;
  config.threads = 1;
  serve::InferenceService service(registry, config);

  EXPECT_FALSE(service.reconstruct(ramp(3), 0).ok);           // wrong dim
  EXPECT_FALSE(service.latent_sample(0).ok);                  // not a VAE
  EXPECT_FALSE(service.encode(ramp(spec.input_dim), 0, "nope").ok);
  const serve::InferenceResult bad = service.encode(ramp(3), 0);
  EXPECT_NE(bad.error.find("encode"), std::string::npos);
}

TEST(InferenceService, LatentSampleIsSeedDeterministic) {
  const serve::ModelSpec spec = small_vae_spec();
  std::string error;
  auto model = serve::build_model(spec, &error);
  ASSERT_NE(model, nullptr);
  serve::ModelRegistry registry;
  registry.publish("default", serve::LoadedModel::from_model(spec, *model));
  serve::ServeConfig config;
  config.threads = 2;
  serve::InferenceService service(registry, config);

  const serve::InferenceResult a = service.latent_sample(11);
  const serve::InferenceResult b = service.latent_sample(11);
  const serve::InferenceResult c = service.latent_sample(12);
  ASSERT_TRUE(a.ok && b.ok && c.ok);
  EXPECT_EQ(a.values, b.values);
  EXPECT_NE(a.values, c.values);
  EXPECT_EQ(a.values.size(), spec.input_dim);
}

TEST(InferenceService, BatchedEqualsSingleBitwise) {
  // The coalescing soundness claim: rows of one batched pass are bitwise
  // equal to per-request passes. Submit a wave of concurrent requests
  // through a 1-worker service (so they coalesce into one batch), then
  // compare against synchronous one-at-a-time answers.
  const serve::ModelSpec spec = small_sq_ae_spec();
  std::string error;
  auto model = serve::build_model(spec, &error);
  serve::ModelRegistry registry;
  registry.publish("default", serve::LoadedModel::from_model(spec, *model));

  constexpr int kWave = 12;
  std::vector<std::vector<double>> inputs;
  for (int i = 0; i < kWave; ++i) {
    inputs.push_back(ramp(spec.input_dim, 0.3 + 0.1 * i));
  }

  std::vector<std::vector<double>> batched(kWave);
  {
    serve::ServeConfig config;
    config.threads = 1;
    config.max_batch = kWave;
    serve::InferenceService service(registry, config);
    // A throwaway request forces the worker's replica build, so the wave
    // below queues while the worker is busy and coalesces behind it.
    service.reconstruct(inputs[0], 0);
    std::vector<std::future<serve::InferenceResult>> futures;
    for (int i = 0; i < kWave; ++i) {
      futures.push_back(service.submit(
          "default", serve::Endpoint::kReconstruct, inputs[i],
          static_cast<std::uint64_t>(i)));
    }
    for (int i = 0; i < kWave; ++i) {
      const serve::InferenceResult r = futures[i].get();
      ASSERT_TRUE(r.ok) << r.error;
      batched[i] = r.values;
    }
    EXPECT_GT(service.queue().total_requests(),
              service.queue().total_batches());
  }

  serve::ServeConfig serial;
  serial.threads = 1;
  serial.max_batch = 1;
  serve::InferenceService service(registry, serial);
  for (int i = 0; i < kWave; ++i) {
    const serve::InferenceResult r =
        service.reconstruct(inputs[i], static_cast<std::uint64_t>(i));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(batched[i], r.values) << "row " << i;  // bitwise
  }
}

TEST(InferenceService, HotSwapTakesEffect) {
  const serve::ModelSpec spec = small_sq_ae_spec();
  std::string error;
  auto model_a = serve::build_model(spec, &error);
  auto model_b = serve::build_model(spec, &error);
  // Perturb B so the two generations are distinguishable.
  for (ad::Parameter* p : model_b->classical_parameters()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) p->value[i] += 0.25;
  }

  serve::ModelRegistry registry;
  registry.publish("default", serve::LoadedModel::from_model(spec, *model_a));
  serve::ServeConfig config;
  config.threads = 1;
  serve::InferenceService service(registry, config);

  const std::vector<double> x = ramp(spec.input_dim);
  const serve::InferenceResult before = service.reconstruct(x, 0);
  ASSERT_TRUE(before.ok);

  registry.publish("default", serve::LoadedModel::from_model(spec, *model_b));
  const serve::InferenceResult after = service.reconstruct(x, 0);
  ASSERT_TRUE(after.ok);
  EXPECT_NE(before.values, after.values);

  Rng unused(0);
  const Matrix expected = model_b->reconstruct(row_matrix(x), unused);
  for (std::size_t i = 0; i < after.values.size(); ++i) {
    EXPECT_EQ(after.values[i], expected(0, i));
  }
}

// ---- protocol -------------------------------------------------------------

TEST(Protocol, ParsesAndFormats) {
  serve::WireRequest request;
  std::string error;
  ASSERT_TRUE(serve::parse_request_line(
      "{\"op\": \"encode\", \"seed\": 9, \"id\": 4, \"x\": [1, -2.5e-1], "
      "\"model\": \"m\", \"note\": \"ignored\"}",
      &request, &error))
      << error;
  EXPECT_EQ(request.endpoint, serve::Endpoint::kEncode);
  EXPECT_EQ(request.seed, 9u);
  EXPECT_TRUE(request.has_id);
  EXPECT_EQ(request.id, 4u);
  EXPECT_EQ(request.model, "m");
  ASSERT_EQ(request.x.size(), 2u);
  EXPECT_EQ(request.x[1], -0.25);

  serve::InferenceResult result;
  result.ok = true;
  result.values = {0.5, -1.0};
  EXPECT_EQ(serve::format_response(request, result),
            "{\"ok\": true, \"id\": 4, \"op\": \"encode\", \"y\": [0.5, -1]}");
  result.ok = false;
  result.error = "boom";
  EXPECT_EQ(serve::format_response(request, result),
            "{\"ok\": false, \"id\": 4, \"error\": \"boom\"}");
}

TEST(Protocol, SeedKeepsFullUint64Range) {
  // Seeds must survive the wire exactly: a double round trip would
  // corrupt values above 2^53 and overflow at 2^64.
  serve::WireRequest request;
  std::string error;
  ASSERT_TRUE(serve::parse_request_line(
      "{\"op\": \"encode\", \"seed\": 18446744073709551615, \"x\": [1]}",
      &request, &error))
      << error;
  EXPECT_EQ(request.seed, 18446744073709551615ull);
  ASSERT_TRUE(serve::parse_request_line(
      "{\"op\": \"encode\", \"seed\": 9007199254740993, \"x\": [1]}",
      &request, &error));
  EXPECT_EQ(request.seed, 9007199254740993ull);  // 2^53 + 1, not a double
  // Negative and overflowing seeds are malformed, not wrapped.
  EXPECT_FALSE(serve::parse_request_line(
      "{\"op\": \"encode\", \"seed\": -1, \"x\": [1]}", &request, &error));
  EXPECT_FALSE(serve::parse_request_line(
      "{\"op\": \"encode\", \"seed\": 18446744073709551616, \"x\": [1]}",
      &request, &error));
}

TEST(Protocol, ErrorResponsesEscapeQuotes) {
  // Parser errors quote the offending key; the error response must still
  // be valid JSON.
  serve::WireRequest request;
  std::string error;
  ASSERT_FALSE(serve::parse_request_line("{\"op\" 1}", &request, &error));
  const std::string line = serve::format_parse_error(error);
  EXPECT_EQ(line,
            "{\"ok\": false, \"error\": \"expected ':' after \\\"op\\\"\"}");

  serve::InferenceResult result;
  result.error = "bad \"x\"\n";
  EXPECT_EQ(serve::format_response(request, result),
            "{\"ok\": false, \"error\": \"bad \\\"x\\\"\\n\"}");
}

TEST(Protocol, RejectsMalformedLines) {
  serve::WireRequest request;
  std::string error;
  EXPECT_FALSE(serve::parse_request_line("", &request, &error));
  EXPECT_TRUE(error.empty());  // blank = skip, not an error
  EXPECT_FALSE(serve::parse_request_line("encode 1 2 3", &request, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      serve::parse_request_line("{\"op\": \"nope\"}", &request, &error));
  EXPECT_NE(error.find("unknown op"), std::string::npos);
  EXPECT_FALSE(serve::parse_request_line("{\"x\": [1]}", &request, &error));
  EXPECT_NE(error.find("missing"), std::string::npos);
  EXPECT_FALSE(serve::parse_request_line(
      "{\"op\": \"encode\"} trailing", &request, &error));
  // Non-finite payload values are not JSON and are rejected, including
  // literals strtod would accept and overflow-to-inf.
  EXPECT_FALSE(serve::parse_request_line(
      "{\"op\": \"encode\", \"x\": [nan]}", &request, &error));
  EXPECT_FALSE(serve::parse_request_line(
      "{\"op\": \"encode\", \"x\": [inf]}", &request, &error));
  EXPECT_FALSE(serve::parse_request_line(
      "{\"op\": \"encode\", \"x\": [1e999]}", &request, &error));
}

}  // namespace
