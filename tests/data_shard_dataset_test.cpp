// ShardDataset tests: the streaming adapter must be a drop-in replacement
// for an in-memory feature matrix. Two contracts:
//
//   1. copy_row reproduces chem::molecule_to_features for every record —
//      same encoding the in-memory scenarios use.
//   2. Trainer::fit over the RowSource is bit-identical to fit over the
//      materialized Matrix: same parameters, same epoch statistics. This
//      is the acceptance bar for --shards training (streamed shuffling is
//      reproducible because make_batches consumes only the row count and
//      per-sample noise is keyed by (noise_seed, epoch, row)).
#include "data/shard_dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "chem/mol_hash.h"
#include "chem/molecule_matrix.h"
#include "chem/smiles.h"
#include "common/rng.h"
#include "data/molecule_dataset.h"
#include "data/shard_store.h"
#include "models/checkpoint.h"
#include "models/classical.h"
#include "models/trainer.h"

namespace sqvae::data {
namespace {

class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_("/tmp/sqvae_shard_ds_test_" + name) {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Canonicalizes `molecules` into a shard; returns the unique SMILES set.
std::set<std::string> make_shard(const std::string& path,
                                 const std::vector<chem::Molecule>& molecules) {
  std::set<std::string> unique;
  ShardWriter writer(path);
  for (const auto& mol : molecules) {
    const auto smiles = chem::to_smiles(mol);
    EXPECT_TRUE(smiles.has_value());
    unique.insert(*smiles);
    EXPECT_NE(writer.insert(chem::hash_bytes(*smiles), *smiles),
              ShardWriter::Insert::kError);
  }
  std::string error;
  EXPECT_TRUE(writer.finish(&error)) << error;
  return unique;
}

TEST(ShardDataset, RowsMatchInMemoryFeatureEncoding) {
  Rng rng(5);
  const auto ds = make_qm9_like(30, 8, rng);
  TempPath file("features.moldb");
  const auto unique = make_shard(file.path(), ds.molecules);

  const ShardDataset shards({file.path()}, 8);
  EXPECT_EQ(shards.rows(), unique.size());
  EXPECT_EQ(shards.cols(), 64u);
  EXPECT_EQ(shards.matrix_dim(), 8u);
  EXPECT_EQ(shards.num_shards(), 1u);
  EXPECT_LE(shards.max_atoms(), 8u);

  std::set<std::string> seen;
  std::vector<double> row(shards.cols());
  for (std::size_t r = 0; r < shards.rows(); ++r) {
    const std::string smiles(shards.smiles(r));
    seen.insert(smiles);
    const auto mol = chem::from_smiles(smiles);
    ASSERT_TRUE(mol.has_value()) << smiles;
    const auto expected = chem::molecule_to_features(*mol, 8);
    shards.copy_row(r, row.data());
    ASSERT_EQ(expected.size(), row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ(row[c], expected[c]) << smiles << " col " << c;
    }
  }
  EXPECT_EQ(seen, unique);
}

TEST(ShardDataset, SpansMultipleShardsInOrder) {
  Rng rng(6);
  const auto ds = make_qm9_like(40, 8, rng);
  const std::vector<chem::Molecule> first(ds.molecules.begin(),
                                          ds.molecules.begin() + 20);
  const std::vector<chem::Molecule> second(ds.molecules.begin() + 20,
                                           ds.molecules.end());
  TempPath a("multi_a.moldb"), b("multi_b.moldb");
  make_shard(a.path(), first);
  make_shard(b.path(), second);

  const ShardDataset shards({a.path(), b.path()}, 8);
  EXPECT_EQ(shards.num_shards(), 2u);

  // Rows are the concatenation of the two shards; verify against each
  // shard read directly.
  std::string error;
  const auto ra = ShardReader::open(a.path(), &error);
  ASSERT_TRUE(ra.has_value()) << error;
  const auto rb = ShardReader::open(b.path(), &error);
  ASSERT_TRUE(rb.has_value()) << error;
  ASSERT_EQ(shards.rows(), ra->size() + rb->size());
  for (std::size_t i = 0; i < ra->size(); ++i) {
    EXPECT_EQ(shards.smiles(i), ra->smiles(i)) << i;
  }
  for (std::size_t i = 0; i < rb->size(); ++i) {
    EXPECT_EQ(shards.smiles(ra->size() + i), rb->smiles(i)) << i;
  }
}

TEST(ShardDataset, RejectsOversizedMoleculesAtConstruction) {
  // A 12..20-atom ligand cannot fit an 8x8 matrix; the constructor (not a
  // mid-epoch copy_row inside an OpenMP region) must say so.
  Rng rng(7);
  const auto ds = make_pdbbind_like(3, 20, rng);
  TempPath file("oversize.moldb");
  make_shard(file.path(), ds.molecules);
  try {
    const ShardDataset shards({file.path()}, 8);
    FAIL() << "expected construction to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("max_atoms"), std::string::npos)
        << e.what();
  }
}

TEST(ShardDataset, MaterializeAndSliceAgreeWithCopyRow) {
  Rng rng(8);
  const auto ds = make_qm9_like(20, 8, rng);
  TempPath file("slice.moldb");
  make_shard(file.path(), ds.molecules);
  const ShardDataset shards({file.path()}, 8);
  ASSERT_GE(shards.rows(), 4u);

  const Matrix all = materialize_rows(shards, 0, shards.rows());
  ASSERT_EQ(all.rows(), shards.rows());
  const RowSlice tail(shards, 2, shards.rows() - 2);
  EXPECT_EQ(tail.rows(), shards.rows() - 2);
  EXPECT_EQ(tail.cols(), shards.cols());
  std::vector<double> row(shards.cols());
  for (std::size_t r = 0; r < tail.rows(); ++r) {
    tail.copy_row(r, row.data());
    for (std::size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ(row[c], all(r + 2, c)) << r << "," << c;
    }
  }
}

TEST(ShardDataset, TrainerBitIdenticalToInMemoryMatrix) {
  // The --shards acceptance bar: feeding the Trainer from mmap'd shards
  // must reproduce the in-memory run bit for bit — parameters and every
  // epoch statistic.
  Rng gen_rng(9);
  const auto ds = make_qm9_like(30, 8, gen_rng);
  TempPath file("train.moldb");
  make_shard(file.path(), ds.molecules);
  const ShardDataset shards({file.path()}, 8);
  const Matrix dense = materialize_rows(shards, 0, shards.rows());

  const auto run = [](const auto& train_with) {
    Rng model_rng(91);
    models::ClassicalAe model(models::classical_config_64(4), model_rng);
    models::TrainConfig config;
    config.epochs = 2;
    config.batch_size = 8;
    config.quantum_lr = 0.0;
    config.classical_lr = 0.01;
    models::Trainer trainer(model, config);
    Rng fit_rng(92);
    auto history = train_with(trainer, fit_rng);
    return std::make_pair(models::checkpoint_to_text(model),
                          std::move(history));
  };

  const auto from_matrix = run(
      [&dense](models::Trainer& trainer, Rng& rng) {
        return trainer.fit(dense, &dense, rng);
      });
  const auto from_shards = run(
      [&shards, &dense](models::Trainer& trainer, Rng& rng) {
        return trainer.fit(shards, &dense, rng);
      });

  EXPECT_EQ(from_matrix.first, from_shards.first);
  ASSERT_EQ(from_matrix.second.size(), from_shards.second.size());
  for (std::size_t e = 0; e < from_matrix.second.size(); ++e) {
    EXPECT_EQ(from_matrix.second[e].train_loss,
              from_shards.second[e].train_loss)
        << e;
    EXPECT_EQ(from_matrix.second[e].train_mse, from_shards.second[e].train_mse)
        << e;
    EXPECT_EQ(from_matrix.second[e].test_mse, from_shards.second[e].test_mse)
        << e;
  }
}

TEST(ShardDataset, MissingShardThrowsWithPath) {
  try {
    const ShardDataset shards({"/nonexistent/nope.moldb"}, 8);
    FAIL() << "expected construction to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nope.moldb"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace sqvae::data
