// Cross-validation of the three gradient engines: adjoint differentiation
// (production path), parameter-shift (hardware-rule oracle), and central
// finite differences (model-free oracle). Agreement across engines that
// share no code beyond the forward simulator is the core correctness
// argument for every training result in this repository.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "qsim/adjoint.h"
#include "qsim/circuit.h"
#include "qsim/embedding.h"
#include "qsim/observable.h"
#include "qsim/paramshift.h"

namespace sqvae::qsim {
namespace {

struct GradCase {
  int num_qubits;
  int layers;
  bool probabilities;  // false: weighted-Z observable
  std::uint64_t seed;
};

std::vector<double> random_params(int count, Rng& rng) {
  std::vector<double> p(static_cast<std::size_t>(count));
  for (double& v : p) v = rng.uniform(-std::numbers::pi, std::numbers::pi);
  return p;
}

std::vector<double> random_diag(const GradCase& c, Rng& rng) {
  if (c.probabilities) {
    std::vector<double> w(std::size_t{1} << c.num_qubits);
    for (double& v : w) v = rng.uniform(-1, 1);
    return w;
  }
  std::vector<double> cot(static_cast<std::size_t>(c.num_qubits));
  for (double& v : cot) v = rng.uniform(-1, 1);
  return weighted_z_diagonal(c.num_qubits, cot);
}

class GradientEngines : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradientEngines, AdjointMatchesParameterShiftAndFiniteDifference) {
  const GradCase c = GetParam();
  Rng rng(c.seed);

  Circuit circuit(c.num_qubits);
  circuit.strongly_entangling_layers(c.layers, 0);
  const std::vector<double> params =
      random_params(circuit.num_param_slots(), rng);
  const std::vector<double> diag = random_diag(c, rng);

  const Statevector initial(c.num_qubits);
  const AdjointResult adj = adjoint_gradient(circuit, params, initial, diag);
  const std::vector<double> ps =
      parameter_shift_gradient(circuit, params, initial, diag);
  const std::vector<double> fd =
      finite_difference_gradient(circuit, params, initial, diag);

  ASSERT_EQ(adj.param_grads.size(), params.size());
  ASSERT_EQ(ps.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_NEAR(adj.param_grads[i], ps[i], 1e-9) << "slot " << i;
    EXPECT_NEAR(adj.param_grads[i], fd[i], 1e-5) << "slot " << i;
  }

  // Value consistency: adjoint's reported value equals a direct run.
  Statevector s = initial;
  run(circuit, params, s);
  EXPECT_NEAR(adj.value, s.expectation_diag(diag), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GradientEngines,
    ::testing::Values(GradCase{2, 1, false, 11}, GradCase{2, 2, true, 12},
                      GradCase{3, 1, false, 13}, GradCase{3, 3, true, 14},
                      GradCase{4, 2, false, 15}, GradCase{4, 3, true, 16},
                      GradCase{5, 2, false, 17}, GradCase{6, 2, true, 18},
                      GradCase{6, 5, false, 19}, GradCase{7, 5, false, 20}));

TEST(GradientEngines, AngleEmbeddingInputGradients) {
  // Circuit: angle embedding (slots 0..n-1) + entangling layers; input
  // gradients are the embedding slots' gradients. Check against FD.
  const int n = 4;
  Rng rng(77);
  Circuit circuit(n);
  int slot = circuit.angle_embedding(0);
  circuit.strongly_entangling_layers(2, slot);
  std::vector<double> params = random_params(circuit.num_param_slots(), rng);

  std::vector<double> cot(n);
  for (double& v : cot) v = rng.uniform(-1, 1);
  const std::vector<double> diag = weighted_z_diagonal(n, cot);

  const Statevector initial(n);
  const AdjointResult adj = adjoint_gradient(circuit, params, initial, diag);
  const std::vector<double> fd =
      finite_difference_gradient(circuit, params, initial, diag);
  for (int q = 0; q < n; ++q) {
    EXPECT_NEAR(adj.param_grads[static_cast<std::size_t>(q)],
                fd[static_cast<std::size_t>(q)], 1e-5)
        << "input slot " << q;
  }
}

TEST(GradientEngines, InitialStateGradientMatchesFiniteDifference) {
  // E(phi0) for a real initial vector: dE/dphi0_j = 2 Re(lambda_j).
  const int n = 3;
  Rng rng(99);
  Circuit circuit(n);
  circuit.strongly_entangling_layers(2, 0);
  const std::vector<double> params =
      random_params(circuit.num_param_slots(), rng);
  const std::vector<double> cot = {0.3, -0.8, 0.5};
  const std::vector<double> diag = weighted_z_diagonal(n, cot);

  // Random normalised real initial state.
  std::vector<double> x(std::size_t{1} << n);
  for (double& v : x) v = rng.uniform(-1, 1);
  const Statevector initial = amplitude_embedding(x, n);

  const AdjointResult adj = adjoint_gradient(circuit, params, initial, diag);
  const std::vector<double> grad = real_initial_gradient(adj);

  const double eps = 1e-6;
  for (std::size_t j = 0; j < initial.dim(); ++j) {
    auto eval = [&](double delta) {
      Statevector s = initial;
      s[j] += delta;
      run(circuit, params, s);
      return s.expectation_diag(diag);
    };
    const double fd = (eval(eps) - eval(-eps)) / (2 * eps);
    EXPECT_NEAR(grad[j], fd, 1e-5) << "amplitude " << j;
  }
}

TEST(GradientEngines, ControlledRotationFourTermRule) {
  // Circuit with CRX/CRY/CRZ gates: exercises the four-term shift rule and
  // the adjoint controlled-derivative (zeroed control-0 block).
  const int n = 3;
  Rng rng(123);
  Circuit circuit(n);
  circuit.ry(0, qsim::Param::slot(0));
  circuit.ry(1, qsim::Param::slot(1));
  circuit.ry(2, qsim::Param::slot(2));
  circuit.crx(0, 1, qsim::Param::slot(3));
  circuit.cry(1, 2, qsim::Param::slot(4));
  circuit.crz(2, 0, qsim::Param::slot(5));
  const std::vector<double> params =
      random_params(circuit.num_param_slots(), rng);
  const std::vector<double> diag = weighted_z_diagonal(n, {0.7, -0.2, 0.4});

  const Statevector initial(n);
  const AdjointResult adj = adjoint_gradient(circuit, params, initial, diag);
  const std::vector<double> ps =
      parameter_shift_gradient(circuit, params, initial, diag);
  const std::vector<double> fd =
      finite_difference_gradient(circuit, params, initial, diag);
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_NEAR(adj.param_grads[i], ps[i], 1e-9) << "slot " << i;
    EXPECT_NEAR(adj.param_grads[i], fd[i], 1e-5) << "slot " << i;
  }
}

TEST(GradientEngines, SharedParameterSlotAccumulates) {
  // Two RY gates bound to the same slot: d/dtheta must sum both
  // occurrences (generalized product rule).
  const int n = 2;
  Circuit circuit(n);
  circuit.ry(0, qsim::Param::slot(0));
  circuit.ry(1, qsim::Param::slot(0));
  const std::vector<double> params = {0.6};
  // Observable Z0 + Z1: E = 2 cos(theta); dE/dtheta = -2 sin(theta).
  const std::vector<double> diag = weighted_z_diagonal(n, {1.0, 1.0});
  const Statevector initial(n);
  const AdjointResult adj = adjoint_gradient(circuit, params, initial, diag);
  EXPECT_NEAR(adj.value, 2.0 * std::cos(0.6), 1e-12);
  EXPECT_NEAR(adj.param_grads[0], -2.0 * std::sin(0.6), 1e-12);
  const std::vector<double> ps =
      parameter_shift_gradient(circuit, params, initial, diag);
  EXPECT_NEAR(ps[0], -2.0 * std::sin(0.6), 1e-12);
}

TEST(GradientEngines, SingleQubitAnalyticCase) {
  // E(theta) = <Z> of RY(theta)|0> = cos(theta).
  Circuit circuit(1);
  circuit.ry(0, qsim::Param::slot(0));
  const std::vector<double> diag = z_diagonal(1, 0);
  const Statevector initial(1);
  for (double theta : {-1.2, 0.0, 0.4, 2.1}) {
    const AdjointResult adj =
        adjoint_gradient(circuit, {theta}, initial, diag);
    EXPECT_NEAR(adj.value, std::cos(theta), 1e-12);
    EXPECT_NEAR(adj.param_grads[0], -std::sin(theta), 1e-12);
  }
}

}  // namespace
}  // namespace sqvae::qsim
