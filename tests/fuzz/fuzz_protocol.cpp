// libFuzzer harness for the serve line protocol
// (serve::parse_request_line). Built only under -DSQVAE_BUILD_FUZZERS=ON
// (clang; composes -fsanitize=fuzzer with ASan). ci/fuzz_smoke.sh runs a
// 30-second smoke from the checked-in corpus on every push.
//
// The parser is the server's trust boundary: every byte a TCP peer sends
// reaches it (after line framing in the event loop), so it must never
// crash, overflow, or read out of bounds on arbitrary input. Round-trip
// property checked on accepted inputs: a parsed request formats into a
// response line without invariant violations.
#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // The transport strips the trailing newline before parsing; embedded
  // newlines are legal payload here and must be rejected, not split.
  const std::string line(reinterpret_cast<const char*>(data), size);

  sqvae::serve::WireRequest request;
  std::string error;
  const bool ok = sqvae::serve::parse_request_line(line, &request, &error);

  if (ok) {
    // Accepted requests must carry a valid op and survive formatting.
    if (!request.is_stats && request.op.empty()) __builtin_trap();
    sqvae::serve::InferenceResult result;
    result.ok = true;
    result.values = request.x;
    (void)sqvae::serve::format_response(request, result);
  } else {
    // Rejections must explain themselves (blank lines excepted).
    (void)sqvae::serve::format_parse_error(error);
  }
  return 0;
}
