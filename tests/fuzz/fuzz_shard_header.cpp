// libFuzzer harness for ShardReader's open-time validation
// (src/data/shard_store.h). Built only under -DSQVAE_BUILD_FUZZERS=ON.
//
// ShardReader::open promises that a reader never serves bytes from a
// corrupt store: magic, version, block geometry, both checksums, index
// ordering, and per-record framing are all validated before any access.
// This harness hands it arbitrary bytes as a shard file; any crash,
// overflow, or out-of-bounds read in the validator (or in a reader that
// wrongly accepted a corrupt file) is a finding. Inputs that pass
// validation are walked end to end, which would surface any framing case
// the validator missed.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unistd.h>

#include "data/shard_store.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // The reader mmaps a file, so the input must round-trip through one.
  // /dev/shm keeps the smoke run off disk; unlink-after-open keeps the
  // corpus directory the only artifact.
  char path[] = "/dev/shm/sqvae_fuzz_shard_XXXXXX";
  const int fd = ::mkstemp(path);
  if (fd < 0) return 0;
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);

  std::string error;
  auto reader = sqvae::data::ShardReader::open(path, &error);
  ::unlink(path);
  if (!reader.has_value()) {
    // Every rejection must carry a precise message.
    if (error.empty()) __builtin_trap();
    return 0;
  }

  // Accepted shard: every record must be addressable and findable.
  for (std::size_t i = 0; i < reader->size(); ++i) {
    const sqvae::chem::MolHash key = reader->key(i);
    (void)reader->smiles(i);
    if (!reader->contains(key)) __builtin_trap();
  }
  return 0;
}
