// Cache-blocked executor schedule: plan-shape invariants of the
// deterministic commute-and-group reordering, golden equivalence of blocked
// execution against the unblocked plan and the gate-by-gate interpreter,
// and bitwise serial-vs-amplitude-parallel identity (the reordered step
// sequence is part of the compiled plan, so threading never changes result
// bits).
//
// The block size floor is 8 (executor.cpp clamps block_qubits to [8, 24]),
// so these tests run 10..12-qubit circuits against block_qubits = 8 to get
// real multi-block sweeps while staying tier-1 fast.
#include "qsim/executor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numbers>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/rng.h"
#include "qsim/circuit.h"
#include "qsim/kernels.h"

namespace sqvae::qsim {
namespace {

constexpr double kTol = 1e-12;

std::vector<double> random_params(int count, Rng& rng) {
  std::vector<double> p(static_cast<std::size_t>(count));
  for (double& v : p) v = rng.uniform(-std::numbers::pi, std::numbers::pi);
  return p;
}

Statevector random_state(int num_qubits, Rng& rng) {
  std::vector<cplx> amps(std::size_t{1} << num_qubits);
  double norm_sq = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.normal(), rng.normal()};
    norm_sq += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (cplx& a : amps) a *= inv;
  return Statevector(std::move(amps));
}

/// Appends one random gate drawn from the full alphabet (same construction
/// as qsim_executor_test.cpp).
void push_random_gate(Circuit& c, int num_qubits, int& next_slot, Rng& rng) {
  const GateKind kinds[] = {
      GateKind::kRX, GateKind::kRY,  GateKind::kRZ,  GateKind::kH,
      GateKind::kX,  GateKind::kY,   GateKind::kZ,   GateKind::kS,
      GateKind::kT,  GateKind::kCNOT, GateKind::kCZ, GateKind::kCRX,
      GateKind::kCRY, GateKind::kCRZ, GateKind::kSWAP};
  const GateKind k = kinds[rng.uniform_index(std::size(kinds))];
  const int target = rng.uniform_int(0, num_qubits - 1);
  int other = rng.uniform_int(0, num_qubits - 2);
  if (other >= target) ++other;
  auto param = [&]() {
    if (rng.bernoulli(0.5)) return Param::slot(next_slot++);
    return Param::value(rng.uniform(-std::numbers::pi, std::numbers::pi));
  };
  switch (k) {
    case GateKind::kRX: c.rx(target, param()); break;
    case GateKind::kRY: c.ry(target, param()); break;
    case GateKind::kRZ: c.rz(target, param()); break;
    case GateKind::kH: c.h(target); break;
    case GateKind::kX: c.x(target); break;
    case GateKind::kY: c.y(target); break;
    case GateKind::kZ: c.z(target); break;
    case GateKind::kS: c.s(target); break;
    case GateKind::kT: c.t(target); break;
    case GateKind::kCNOT: c.cnot(other, target); break;
    case GateKind::kCZ: c.cz(other, target); break;
    case GateKind::kCRX: c.crx(other, target, param()); break;
    case GateKind::kCRY: c.cry(other, target, param()); break;
    case GateKind::kCRZ: c.crz(other, target, param()); break;
    case GateKind::kSWAP: c.swap(other, target); break;
  }
}

void expect_states_close(const Statevector& a, const Statevector& b,
                         double tol = kTol) {
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t i = 0; i < a.dim(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, tol) << "amplitude " << i;
  }
}

void expect_states_bitwise(const Statevector& a, const Statevector& b) {
  ASSERT_EQ(a.dim(), b.dim());
  EXPECT_EQ(std::memcmp(a.amplitudes().data(), b.amplitudes().data(),
                        a.dim() * sizeof(cplx)),
            0);
}

/// Restores the amplitude-parallel threshold on scope exit.
class ThresholdGuard {
 public:
  ThresholdGuard() : saved_(kernels::parallel_threshold()) {}
  ~ThresholdGuard() { kernels::set_parallel_threshold(saved_); }

 private:
  std::size_t saved_;
};

ExecutorOptions block8() {
  ExecutorOptions opts;
  opts.block_qubits = 8;
  return opts;
}

TEST(BlockedExecutor, EngagesOnlyAboveBlockSize) {
  Circuit small(8);
  small.angle_embedding(0);
  CircuitExecutor at_limit(small, block8());
  EXPECT_FALSE(at_limit.blocked());
  EXPECT_EQ(at_limit.num_block_groups(), 0u);
  EXPECT_EQ(at_limit.num_exchange_steps(), 0u);
  EXPECT_EQ(at_limit.block_qubits(), 8);

  Circuit big(10);
  big.angle_embedding(0);
  CircuitExecutor blocked(big, block8());
  EXPECT_TRUE(blocked.blocked());
  EXPECT_GT(blocked.num_block_groups(), 0u);
}

TEST(BlockedExecutor, OptionsClampToSupportedRange) {
  Circuit c(10);
  c.angle_embedding(0);
  ExecutorOptions low;
  low.block_qubits = 2;
  EXPECT_EQ(CircuitExecutor(c, low).block_qubits(), 8);
  ExecutorOptions high;
  high.block_qubits = 40;
  EXPECT_EQ(CircuitExecutor(c, high).block_qubits(), 24);
}

TEST(BlockedExecutor, AllLocalCircuitCompilesToSingleGroupSweep) {
  // Every gate stays below block_qubits = 8, so the whole plan is one
  // block-local group and no exchange steps exist.
  Circuit c(10);
  int slot = 0;
  for (int q = 0; q < 8; ++q) c.ry(q, Param::slot(slot++));
  for (int q = 0; q + 1 < 8; ++q) c.cnot(q, q + 1);
  CircuitExecutor exec(c, block8());
  ASSERT_TRUE(exec.blocked());
  EXPECT_EQ(exec.num_block_groups(), 1u);
  EXPECT_EQ(exec.num_exchange_steps(), 0u);
}

TEST(BlockedExecutor, HighTargetStepsBecomeExchangeGroups) {
  // Low gates / one high gate / low gates: the trailing low gates touch the
  // same wires as the leading ones, so they cannot commute past the
  // blockers' barrier — plan shape is local / exchange / local.
  Circuit c(10);
  c.ry(0, Param::slot(0)).ry(1, Param::slot(1));
  c.cnot(0, 9);  // crosses the block boundary -> exchange step
  c.ry(0, Param::slot(2)).ry(1, Param::slot(3));
  CircuitExecutor exec(c, block8());
  ASSERT_TRUE(exec.blocked());
  EXPECT_EQ(exec.num_exchange_steps(), 1u);
  EXPECT_GE(exec.num_block_groups(), 3u);
}

TEST(BlockedExecutor, DiagonalHighStepsStayBlockLocal) {
  // CZ on a high qubit is diagonal: elementwise over the amplitudes, so the
  // blocked schedule keeps it inside a local group (each block reads its
  // slice of the phase table) — no exchange step.
  Circuit c(10);
  c.ry(0, Param::slot(0));
  c.cz(0, 9);
  c.rz(9, Param::slot(1));
  CircuitExecutor exec(c, block8());
  ASSERT_TRUE(exec.blocked());
  EXPECT_EQ(exec.num_exchange_steps(), 0u);
}

TEST(BlockedExecutor, MatchesUnblockedPlanOnRandomCircuits) {
  Rng rng(51);
  ExecutorOptions unblocked;
  unblocked.block_qubits = 24;  // never engages at 12 qubits
  for (int trial = 0; trial < 12; ++trial) {
    const int qubits = 12;
    Circuit c(qubits);
    int next_slot = 0;
    const int gates = rng.uniform_int(20, 80);
    for (int g = 0; g < gates; ++g) {
      push_random_gate(c, qubits, next_slot, rng);
    }
    const auto params = random_params(c.num_param_slots(), rng);
    const Statevector initial = random_state(qubits, rng);

    CircuitExecutor plain(c, unblocked);
    ASSERT_FALSE(plain.blocked());
    Statevector want = initial;
    plain.run(params, want);

    CircuitExecutor blocked(c, block8());
    ASSERT_TRUE(blocked.blocked());
    Statevector got = initial;
    blocked.run(params, got);

    expect_states_close(want, got);
  }
}

TEST(BlockedExecutor, MatchesInterpreterOnEntanglingLayers) {
  Rng rng(52);
  const int qubits = 11;
  Circuit c(qubits);
  int slot = c.angle_embedding(0);
  c.strongly_entangling_layers(3, slot);
  const auto params = random_params(c.num_param_slots(), rng);

  const Statevector naive = run_from_zero(c, params);
  CircuitExecutor exec(c, block8());
  ASSERT_TRUE(exec.blocked());
  expect_states_close(naive, exec.run_from_zero(params));
}

TEST(BlockedExecutor, SerialAndParallelExecutionAreBitIdentical) {
  // The blocked schedule is compiled state: serial and amplitude-parallel
  // execution walk the identical step sequence, and the parallel kernels
  // are bit-identical to their serial bodies, so the amplitudes must match
  // bit for bit at every thread count.
  ThresholdGuard guard;
  Rng rng(53);
  const int qubits = 12;
  Circuit c(qubits);
  int next_slot = 0;
  for (int g = 0; g < 60; ++g) {
    push_random_gate(c, qubits, next_slot, rng);
  }
  const auto params = random_params(c.num_param_slots(), rng);
  const Statevector initial = random_state(qubits, rng);
  CircuitExecutor exec(c, block8());
  ASSERT_TRUE(exec.blocked());

  kernels::set_parallel_threshold(SIZE_MAX);  // pin the serial path
  Statevector serial = initial;
  exec.run(params, serial);

  kernels::set_parallel_threshold(1);  // force amplitude-parallel
#ifdef _OPENMP
  const int saved_threads = omp_get_max_threads();
  for (const int t : {1, 2, 3, 4}) {
    omp_set_num_threads(t);
    Statevector par = initial;
    exec.run(params, par);
    expect_states_bitwise(serial, par);
  }
  omp_set_num_threads(saved_threads);
#else
  Statevector par = initial;
  exec.run(params, par);
  expect_states_bitwise(serial, par);
#endif
}

TEST(BlockedExecutor, RunBatchAndAdjointMatchUnblockedPath) {
  Rng rng(54);
  const int qubits = 10;
  Circuit c(qubits);
  int slot = c.angle_embedding(0);
  c.strongly_entangling_layers(2, slot);

  const int batch = 4;
  std::vector<std::vector<double>> params_batch;
  std::vector<Statevector> blocked_states;
  std::vector<Statevector> plain_states;
  std::vector<Statevector> initials;
  std::vector<std::vector<double>> diags;
  for (int i = 0; i < batch; ++i) {
    params_batch.push_back(random_params(c.num_param_slots(), rng));
    Statevector s = random_state(qubits, rng);
    blocked_states.push_back(s);
    plain_states.push_back(s);
    initials.push_back(std::move(s));
    std::vector<double> d(std::size_t{1} << qubits);
    for (double& v : d) v = rng.uniform(-1.0, 1.0);
    diags.push_back(std::move(d));
  }

  ExecutorOptions unblocked;
  unblocked.block_qubits = 24;
  CircuitExecutor plain(c, unblocked);
  CircuitExecutor blocked(c, block8());
  ASSERT_TRUE(blocked.blocked());

  plain.run_batch(params_batch, plain_states);
  blocked.run_batch(params_batch, blocked_states);
  for (int i = 0; i < batch; ++i) {
    expect_states_close(plain_states[i], blocked_states[i]);
  }

  const auto want = plain.adjoint_batch(params_batch, initials, diags);
  const auto got = blocked.adjoint_batch(params_batch, initials, diags);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(want[i].value, got[i].value, kTol);
    ASSERT_EQ(want[i].param_grads.size(), got[i].param_grads.size());
    for (std::size_t j = 0; j < want[i].param_grads.size(); ++j) {
      EXPECT_NEAR(want[i].param_grads[j], got[i].param_grads[j], kTol);
    }
  }
}

}  // namespace
}  // namespace sqvae::qsim
