// Shard-store tests: round trips, exact duplicate accounting, k-way merge,
// and — most importantly — the failure paths. A corrupt or truncated shard
// must be rejected at open() with a precise reason, never half-read: the
// store is the durability layer under every corpus, so these tests flip
// real bytes in real files and assert the validator catches each class.
#include "data/shard_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "chem/mol_hash.h"

namespace sqvae::data {
namespace {

using chem::MolHash;
using chem::hash_bytes;

class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_("/tmp/sqvae_shard_test_" + name) {
    std::remove(path_.c_str());
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << path;
}

/// Writes a well-formed shard holding the given SMILES (deduplicated).
void make_shard(const std::string& path,
                const std::vector<std::string>& records) {
  ShardWriter writer(path);
  for (const auto& smiles : records) {
    ASSERT_NE(writer.insert(hash_bytes(smiles), smiles),
              ShardWriter::Insert::kError);
  }
  std::string error;
  ASSERT_TRUE(writer.finish(&error)) << error;
}

void expect_open_fails(const std::string& path, const std::string& needle) {
  std::string error;
  const auto reader = ShardReader::open(path, &error);
  EXPECT_FALSE(reader.has_value()) << path;
  EXPECT_NE(error.find(needle), std::string::npos)
      << "expected '" << needle << "' in: " << error;
}

TEST(ShardStore, WriteReadRoundTrip) {
  TempPath file("roundtrip.moldb");
  const std::vector<std::string> records = {"CCO", "CCN", "c1ccccc1", "C"};
  make_shard(file.path(), records);

  std::string error;
  const auto reader = ShardReader::open(file.path(), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  ASSERT_EQ(reader->size(), records.size());

  // Every record is present and addressable by its key; iteration order is
  // ascending key order regardless of insertion order.
  for (const auto& smiles : records) {
    const MolHash key = hash_bytes(smiles);
    EXPECT_TRUE(reader->contains(key)) << smiles;
    const auto idx = reader->find(key);
    ASSERT_TRUE(idx.has_value()) << smiles;
    EXPECT_EQ(reader->smiles(*idx), smiles);
    EXPECT_TRUE(reader->key(*idx) == key);
  }
  for (std::size_t i = 1; i < reader->size(); ++i) {
    EXPECT_TRUE(reader->key(i - 1) < reader->key(i)) << i;
  }
  EXPECT_FALSE(reader->contains(hash_bytes("absent")));
  EXPECT_FALSE(reader->find(hash_bytes("absent")).has_value());
}

TEST(ShardStore, DuplicateHeavyInsertCountsAreExact) {
  TempPath file("dups.moldb");
  ShardWriter writer(file.path());
  const MolHash a = hash_bytes("CCO");
  const MolHash b = hash_bytes("CCN");
  for (int round = 0; round < 50; ++round) {
    const auto ra = writer.insert(a, "CCO");
    const auto rb = writer.insert(b, "CCN");
    const auto expected = round == 0 ? ShardWriter::Insert::kAdded
                                     : ShardWriter::Insert::kDuplicate;
    EXPECT_EQ(ra, expected) << round;
    EXPECT_EQ(rb, expected) << round;
  }
  EXPECT_EQ(writer.added(), 2u);
  EXPECT_EQ(writer.duplicates(), 98u);
  std::string error;
  ASSERT_TRUE(writer.finish(&error)) << error;

  const auto reader = ShardReader::open(file.path(), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  EXPECT_EQ(reader->size(), 2u);
}

TEST(ShardStore, RejectsNewlinesAndAbandonedWriterLeavesNoFile) {
  TempPath file("reject.moldb");
  {
    ShardWriter writer(file.path());
    EXPECT_EQ(writer.insert(hash_bytes("C\nC"), "C\nC"),
              ShardWriter::Insert::kError);
    EXPECT_EQ(writer.insert(hash_bytes("CC"), "CC"),
              ShardWriter::Insert::kAdded);
    // Destroyed without finish(): the tmp file must be cleaned up and the
    // final path never created.
  }
  std::ifstream final_file(file.path());
  EXPECT_FALSE(final_file.good());
  std::ifstream tmp_file(file.path() + ".tmp");
  EXPECT_FALSE(tmp_file.good());
}

TEST(ShardStore, ZeroRecordShardIsValid) {
  TempPath file("empty.moldb");
  make_shard(file.path(), {});
  std::string error;
  const auto reader = ShardReader::open(file.path(), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  EXPECT_EQ(reader->size(), 0u);
  EXPECT_EQ(reader->data_bytes(), 0u);
  EXPECT_FALSE(reader->contains(hash_bytes("CCO")));
}

TEST(ShardStore, RejectsTruncatedFile) {
  TempPath file("trunc.moldb");
  make_shard(file.path(), {"CCO", "CCN", "c1ccccc1"});
  const std::string bytes = read_file(file.path());

  // Sliced inside the header: too short to even carry the magic.
  write_file(file.path(), bytes.substr(0, 20));
  expect_open_fails(file.path(), "truncated header");

  // Sliced inside the index: the stated record count no longer fits.
  write_file(file.path(), bytes.substr(0, bytes.size() - 10));
  expect_open_fails(file.path(), "bad index size");

  // Trailing garbage is also rejected: the header must account for every
  // byte in the file.
  write_file(file.path(), bytes + "junk");
  expect_open_fails(file.path(), "file size mismatch");
}

TEST(ShardStore, RejectsBadMagicAndWrongVersion) {
  TempPath file("magic.moldb");
  make_shard(file.path(), {"CCO"});
  std::string bytes = read_file(file.path());

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  write_file(file.path(), bad_magic);
  expect_open_fails(file.path(), "bad magic");

  std::string bad_version = bytes;
  bad_version[8] = static_cast<char>(kShardFormatVersion + 1);
  write_file(file.path(), bad_version);
  expect_open_fails(file.path(), "unsupported shard version");
}

TEST(ShardStore, RejectsCorruptedChecksums) {
  TempPath file("corrupt.moldb");
  make_shard(file.path(), {"CCO", "CCN", "c1ccccc1", "CC(C)C"});
  const std::string bytes = read_file(file.path());

  // Flip one payload byte in the data block (starts at offset 72).
  std::string bad_data = bytes;
  bad_data[76] ^= 0x01;
  write_file(file.path(), bad_data);
  expect_open_fails(file.path(), "data checksum mismatch");

  // Flip one byte in the index block (the last 4 * 28 bytes).
  std::string bad_index = bytes;
  bad_index[bytes.size() - 5] ^= 0x01;
  write_file(file.path(), bad_index);
  expect_open_fails(file.path(), "index checksum mismatch");
}

TEST(ShardStore, MergeDeduplicatesAcrossShardsExactly) {
  TempPath a("merge_a.moldb"), b("merge_b.moldb"), c("merge_c.moldb");
  TempPath out("merge_out.moldb");
  // 3 + 3 + 2 input records; "CCO" in all three, "CCN" in two.
  make_shard(a.path(), {"CCO", "CCN", "c1ccccc1"});
  make_shard(b.path(), {"CCO", "CCN", "CC(C)C"});
  make_shard(c.path(), {"CCO", "CCCC"});

  MergeStats stats;
  std::string error;
  ASSERT_TRUE(merge_shards({a.path(), b.path(), c.path()}, out.path(), &stats,
                           &error))
      << error;
  EXPECT_EQ(stats.inputs, 3u);
  EXPECT_EQ(stats.input_records, 8u);
  EXPECT_EQ(stats.cross_duplicates, 3u);  // 2 extra CCO + 1 extra CCN
  EXPECT_EQ(stats.written, 5u);

  const auto reader = ShardReader::open(out.path(), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  ASSERT_EQ(reader->size(), 5u);
  for (const char* smiles : {"CCO", "CCN", "c1ccccc1", "CC(C)C", "CCCC"}) {
    EXPECT_TRUE(reader->contains(hash_bytes(smiles))) << smiles;
  }

  // Merging the merge with its own inputs is a fixed point.
  TempPath again("merge_again.moldb");
  MergeStats stats2;
  ASSERT_TRUE(merge_shards({out.path(), a.path()}, again.path(), &stats2,
                           &error))
      << error;
  EXPECT_EQ(stats2.cross_duplicates, 3u);
  EXPECT_EQ(stats2.written, 5u);
}

TEST(ShardStore, MergeRejectsKeyCollisionWithDifferingPayloads) {
  TempPath a("collide_a.moldb"), b("collide_b.moldb");
  TempPath out("collide_out.moldb");
  const MolHash shared = hash_bytes("CCO");
  {
    ShardWriter writer(a.path());
    ASSERT_EQ(writer.insert(shared, "CCO"), ShardWriter::Insert::kAdded);
    std::string error;
    ASSERT_TRUE(writer.finish(&error)) << error;
  }
  {
    // Same key, different payload: simulates a 128-bit collision (or a
    // checksummed-but-wrong input). The merge must refuse to pick one.
    ShardWriter writer(b.path());
    ASSERT_EQ(writer.insert(shared, "CCN"), ShardWriter::Insert::kAdded);
    std::string error;
    ASSERT_TRUE(writer.finish(&error)) << error;
  }
  MergeStats stats;
  std::string error;
  EXPECT_FALSE(merge_shards({a.path(), b.path()}, out.path(), &stats, &error));
  EXPECT_NE(error.find("differing payloads"), std::string::npos) << error;
  std::ifstream output(out.path());
  EXPECT_FALSE(output.good());  // no partial output left behind
}

TEST(ShardStore, MergeFailsOnMissingInput) {
  TempPath a("missing_a.moldb");
  TempPath out("missing_out.moldb");
  make_shard(a.path(), {"CCO"});
  MergeStats stats;
  std::string error;
  EXPECT_FALSE(merge_shards({a.path(), "/nonexistent/nope.moldb"}, out.path(),
                            &stats, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace sqvae::data
