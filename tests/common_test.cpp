#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/flags.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace sqvae {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformMoments) {
  Rng rng(7);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
    sum_sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(sum_sq / n - 0.25, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, UniformIndexUnbiased) {
  Rng rng(9);
  int counts[5] = {0};
  for (int i = 0; i < 50000; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, WeightedChoiceRespectsWeights) {
  Rng rng(11);
  int counts[3] = {0};
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.weighted_choice({1.0, 0.0, 3.0})];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, PermutationIsBijective) {
  Rng rng(12);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(13);
  Rng child = a.split();
  // Child and parent should not produce identical sequences.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Matrix, MatmulKnownResult) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a.matmul(b);
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(0, 1), 22);
  EXPECT_EQ(c(1, 0), 43);
  EXPECT_EQ(c(1, 1), 50);
}

TEST(Matrix, TransposeAndIdentity) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(2, 1), 6);
  const Matrix i3 = Matrix::identity(3);
  EXPECT_EQ(a.matmul(i3.transpose()), a);
}

TEST(Matrix, NormsAndStats) {
  const Matrix m{{3, -4}};
  EXPECT_EQ(m.l1_norm(), 7.0);
  EXPECT_EQ(m.frobenius_norm(), 5.0);
  EXPECT_EQ(m.max(), 3.0);
  EXPECT_EQ(m.min(), -4.0);
  EXPECT_EQ(m.sum(), -1.0);
}

TEST(Matrix, MseAgainstSelfIsZero) {
  const Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.mse(m), 0.0);
  Matrix shifted = m;
  shifted *= 2.0;
  EXPECT_NEAR(m.mse(shifted), (1.0 + 4.0 + 9.0 + 16.0) / 4.0, 1e-12);
}

TEST(Matrix, VectorHelpers) {
  EXPECT_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_EQ(l1_norm({1, -2, 3}), 6.0);
  EXPECT_NEAR(l2_norm({3, 4}), 5.0, 1e-12);
  const auto n = l1_normalized({2.0, -2.0});
  EXPECT_NEAR(n[0], 0.5, 1e-12);
  EXPECT_NEAR(std::abs(n[1]), 0.5, 1e-12);
  EXPECT_NEAR(mse({1, 2}, {2, 4}), 2.5, 1e-12);
}

TEST(Flags, ParsesAllForms) {
  Flags flags;
  flags.add_string("name", "default", "a name");
  flags.add_int("count", 5, "a count");
  flags.add_double("rate", 0.1, "a rate");
  flags.add_bool("verbose", false, "verbosity");
  const char* argv[] = {"prog", "--name=alice", "--count", "12",
                        "--rate=0.5", "--verbose"};
  ASSERT_TRUE(flags.parse(6, argv));
  EXPECT_EQ(flags.get_string("name"), "alice");
  EXPECT_EQ(flags.get_int("count"), 12);
  EXPECT_EQ(flags.get_double("rate"), 0.5);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Flags, DefaultsWhenUnset) {
  Flags flags;
  flags.add_int("epochs", 20, "epochs");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.get_int("epochs"), 20);
}

TEST(Flags, RejectsUnknownAndMalformed) {
  Flags flags;
  flags.add_int("count", 5, "a count");
  const char* unknown[] = {"prog", "--nope=1"};
  EXPECT_THROW(flags.parse(2, unknown), std::invalid_argument);
  const char* bad_value[] = {"prog", "--count=abc"};
  EXPECT_THROW(flags.parse(2, bad_value), std::invalid_argument);
  const char* positional[] = {"prog", "stray"};
  EXPECT_THROW(flags.parse(2, positional), std::invalid_argument);
}

TEST(Flags, HelpReturnsFalse) {
  Flags flags;
  flags.add_int("count", 5, "a count");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Table, TextAndCsvRendering) {
  Table t({"model", "loss"});
  t.add_row({"VAE", Table::fmt(0.12345, 3)});
  t.add_row({"SQ-VAE", Table::fmt(0.1, 3)});
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("model"), std::string::npos);
  EXPECT_NE(text.find("0.123"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("model,loss"), std::string::npos);
  EXPECT_NE(csv.find("SQ-VAE,0.100"), std::string::npos);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(w.seconds(), 0.0);
  w.reset();
  EXPECT_LT(w.seconds(), 1.0);
}

}  // namespace
}  // namespace sqvae
