// Gradient cross-check for the executor-backed training path: the adjoint
// sweep run through CircuitExecutor::adjoint_batch (fused forward + exact
// reverse) must agree with the parameter-shift oracle — which shares no code
// with the executor beyond the raw statevector kernels — on the exact
// circuits QuantumLayer trains: angle/amplitude embedding × expectation/
// probability measurement, for every parameter slot including the embedding
// slots that carry input gradients.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "models/quantum_layer.h"
#include "qsim/embedding.h"
#include "qsim/executor.h"
#include "qsim/observable.h"
#include "qsim/paramshift.h"

namespace sqvae::models {
namespace {

using qsim::CircuitExecutor;
using qsim::Statevector;

constexpr double kTol = 1e-6;

struct ModeCase {
  QuantumLayerConfig::InputMode input;
  QuantumLayerConfig::OutputMode output;
  const char* name;
};

const ModeCase kModes[] = {
    {QuantumLayerConfig::InputMode::kAngle,
     QuantumLayerConfig::OutputMode::kExpectationZ, "angle/expZ"},
    {QuantumLayerConfig::InputMode::kAngle,
     QuantumLayerConfig::OutputMode::kProbabilities, "angle/probs"},
    {QuantumLayerConfig::InputMode::kAmplitude,
     QuantumLayerConfig::OutputMode::kExpectationZ, "amplitude/expZ"},
    {QuantumLayerConfig::InputMode::kAmplitude,
     QuantumLayerConfig::OutputMode::kProbabilities, "amplitude/probs"},
};

TEST(ExecutorGradientCrossCheck, AdjointBatchAgreesWithParameterShift) {
  for (const ModeCase& mode : kModes) {
    for (const int qubits : {2, 3, 4}) {
      sqvae::Rng rng(1000 + qubits);
      QuantumLayerConfig config;
      config.num_qubits = qubits;
      config.entangling_layers = 2;
      config.input = mode.input;
      config.output = mode.output;
      config.input_dim =
          mode.input == QuantumLayerConfig::InputMode::kAngle
              ? qubits
              : (1 << qubits);
      QuantumLayer layer(config, rng);

      // Random input row and upstream cotangent.
      std::vector<double> input(static_cast<std::size_t>(config.input_dim));
      for (double& v : input) v = rng.uniform(0.1, 1.5);
      std::vector<double> cotangent(
          static_cast<std::size_t>(layer.output_dim()));
      for (double& v : cotangent) v = rng.uniform(-1, 1);

      // Full slot vector in QuantumLayer's layout: angle mode prepends the
      // input angles to the weights; amplitude mode is weights only.
      std::vector<double> slots;
      if (mode.input == QuantumLayerConfig::InputMode::kAngle) {
        slots = input;
      }
      const Matrix& w = layer.weights().value;
      slots.insert(slots.end(), w.data(), w.data() + w.size());

      Statevector initial =
          mode.input == QuantumLayerConfig::InputMode::kAmplitude
              ? qsim::amplitude_embedding(input, qubits)
              : Statevector(qubits);

      std::vector<double> diag;
      if (mode.output == QuantumLayerConfig::OutputMode::kExpectationZ) {
        diag = qsim::weighted_z_diagonal(qubits, cotangent);
      } else {
        diag = qsim::probability_vjp_diagonal(cotangent);
      }

      const auto results = layer.executor().adjoint_batch(
          {slots}, std::vector<Statevector>{initial}, {diag});
      ASSERT_EQ(results.size(), 1u);
      const std::vector<double>& adjoint_grads = results[0].param_grads;

      const std::vector<double> shift_grads = qsim::parameter_shift_gradient(
          layer.circuit(), slots, initial, diag);

      ASSERT_EQ(adjoint_grads.size(), shift_grads.size())
          << mode.name << " q=" << qubits;
      for (std::size_t s = 0; s < shift_grads.size(); ++s) {
        EXPECT_NEAR(adjoint_grads[s], shift_grads[s], kTol)
            << mode.name << " q=" << qubits << " slot " << s;
      }
    }
  }
}

TEST(ExecutorGradientCrossCheck, ExecutorValueMatchesMeasuredExpectation) {
  // The adjoint value (the weighted observable expectation) must equal the
  // cotangent-weighted layer output computed by the forward path.
  for (const ModeCase& mode : kModes) {
    sqvae::Rng rng(77);
    QuantumLayerConfig config;
    config.num_qubits = 3;
    config.entangling_layers = 2;
    config.input = mode.input;
    config.output = mode.output;
    config.input_dim =
        mode.input == QuantumLayerConfig::InputMode::kAngle ? 3 : 8;
    QuantumLayer layer(config, rng);

    Matrix input(1, static_cast<std::size_t>(config.input_dim));
    for (std::size_t i = 0; i < input.size(); ++i) {
      input[i] = rng.uniform(0.1, 1.0);
    }
    const Matrix out = layer.forward_values(input);

    std::vector<double> cotangent(
        static_cast<std::size_t>(layer.output_dim()));
    for (double& v : cotangent) v = rng.uniform(-1, 1);
    double expected = 0.0;
    for (std::size_t i = 0; i < cotangent.size(); ++i) {
      expected += cotangent[i] * out(0, i);
    }

    std::vector<double> slots;
    const std::vector<double> row = input.row(0);
    if (mode.input == QuantumLayerConfig::InputMode::kAngle) slots = row;
    const Matrix& w = layer.weights().value;
    slots.insert(slots.end(), w.data(), w.data() + w.size());

    Statevector initial =
        mode.input == QuantumLayerConfig::InputMode::kAmplitude
            ? qsim::amplitude_embedding(row, 3)
            : Statevector(3);
    std::vector<double> diag =
        mode.output == QuantumLayerConfig::OutputMode::kExpectationZ
            ? qsim::weighted_z_diagonal(3, cotangent)
            : qsim::probability_vjp_diagonal(cotangent);

    const auto results = layer.executor().adjoint_batch(
        {slots}, std::vector<Statevector>{initial}, {diag});
    EXPECT_NEAR(results[0].value, expected, 1e-9) << mode.name;
  }
}

}  // namespace
}  // namespace sqvae::models
