#include "chem/smiles.h"

#include <gtest/gtest.h>

#include <set>

#include "chem/canonical.h"
#include "chem/sanitize.h"
#include "common/rng.h"
#include "data/molecule_gen.h"

namespace sqvae::chem {
namespace {

TEST(SmilesWriter, SimpleMolecules) {
  Molecule methane;
  methane.add_atom(Element::kC);
  EXPECT_EQ(to_smiles(methane).value(), "C");

  Molecule ethanol;
  ethanol.add_atom(Element::kC);
  ethanol.add_atom(Element::kC);
  ethanol.add_atom(Element::kO);
  ethanol.set_bond(0, 1, BondType::kSingle);
  ethanol.set_bond(1, 2, BondType::kSingle);
  const std::string s = to_smiles(ethanol).value();
  // Canonical form is one of the linear writings of CCO.
  const Molecule back = from_smiles(s).value();
  EXPECT_EQ(back.num_atoms(), 3);
}

TEST(SmilesWriter, BenzeneUsesAromaticRingClosure) {
  Molecule m;
  for (int i = 0; i < 6; ++i) m.add_atom(Element::kC);
  for (int i = 0; i < 6; ++i) m.set_bond(i, (i + 1) % 6, BondType::kAromatic);
  EXPECT_EQ(to_smiles(m).value(), "c1ccccc1");
}

TEST(SmilesWriter, EmptyAndDisconnected) {
  Molecule empty;
  EXPECT_EQ(to_smiles(empty).value(), "");
  Molecule two;
  two.add_atom(Element::kC);
  two.add_atom(Element::kC);  // no bond: two fragments
  EXPECT_FALSE(to_smiles(two).has_value());
}

TEST(SmilesParser, ParsesBondOrders) {
  const Molecule ethene = from_smiles("C=C").value();
  EXPECT_EQ(ethene.bond_between(0, 1), BondType::kDouble);
  const Molecule ethyne = from_smiles("C#C").value();
  EXPECT_EQ(ethyne.bond_between(0, 1), BondType::kTriple);
  const Molecule cco = from_smiles("CCO").value();
  EXPECT_EQ(cco.atom(2), Element::kO);
}

TEST(SmilesParser, ParsesBranches) {
  // Isobutane: CC(C)C.
  const Molecule m = from_smiles("CC(C)C").value();
  EXPECT_EQ(m.num_atoms(), 4);
  EXPECT_EQ(m.degree(1), 3);
}

TEST(SmilesParser, ParsesRings) {
  const Molecule benzene = from_smiles("c1ccccc1").value();
  EXPECT_EQ(benzene.num_atoms(), 6);
  int aromatic_bonds = 0;
  for (const Bond& b : benzene.bonds()) {
    if (b.type == BondType::kAromatic) ++aromatic_bonds;
  }
  EXPECT_EQ(aromatic_bonds, 6);

  const Molecule cyclohexane = from_smiles("C1CCCCC1").value();
  EXPECT_EQ(cyclohexane.num_bonds(), 6);
  for (const Bond& b : cyclohexane.bonds()) {
    EXPECT_EQ(b.type, BondType::kSingle);
  }
}

TEST(SmilesParser, PyridineAndToluene) {
  const Molecule pyridine = from_smiles("c1ccncc1").value();
  EXPECT_EQ(pyridine.num_atoms(), 6);
  EXPECT_TRUE(pyridine.valences_ok());

  const Molecule toluene = from_smiles("Cc1ccccc1").value();
  EXPECT_EQ(toluene.num_atoms(), 7);
  EXPECT_EQ(toluene.bond_between(0, 1), BondType::kSingle);
}

TEST(SmilesParser, ExplicitSingleBetweenAromaticAtoms) {
  // Biphenyl: the '-' keeps the inter-ring bond single.
  const Molecule m = from_smiles("c1ccccc1-c1ccccc1").value();
  EXPECT_EQ(m.num_atoms(), 12);
  int single_bonds = 0;
  for (const Bond& b : m.bonds()) {
    if (b.type == BondType::kSingle) ++single_bonds;
  }
  EXPECT_EQ(single_bonds, 1);
}

TEST(SmilesParser, RejectsMalformedInput) {
  EXPECT_FALSE(from_smiles("").has_value());
  EXPECT_FALSE(from_smiles("C(").has_value());        // unclosed branch
  EXPECT_FALSE(from_smiles("C)C").has_value());       // unopened branch
  EXPECT_FALSE(from_smiles("C1CC").has_value());      // unclosed ring
  EXPECT_FALSE(from_smiles("C=").has_value());        // dangling bond
  EXPECT_FALSE(from_smiles("C==C").has_value());      // double bond symbol
  EXPECT_FALSE(from_smiles("CH4").has_value());       // H not in alphabet
  EXPECT_FALSE(from_smiles("C.C").has_value());       // fragments rejected
  EXPECT_FALSE(from_smiles("[NH4+]").has_value());    // brackets unsupported
  EXPECT_FALSE(from_smiles("C$C").has_value());       // garbage
  EXPECT_FALSE(from_smiles("O=C=O=C=O").has_value()); // overvalent chain
}

TEST(SmilesParser, RejectsValenceViolations) {
  EXPECT_FALSE(from_smiles("F=C").has_value());   // F cannot double bond
  EXPECT_FALSE(from_smiles("O#C").has_value());   // O cannot triple bond
}

TEST(SmilesRoundTrip, WriteParseWritePreservesCanonicalForm) {
  const char* cases[] = {
      "C",        "CC",     "CCO",     "C=C",       "C#N",
      "CC(C)C",   "C1CCCCC1", "c1ccccc1", "Cc1ccccc1", "c1ccncc1",
      "CC(=O)O",  "NCC(=O)O", "FC(F)F",  "CSC",       "O=S(=O)(C)C",
  };
  for (const char* s : cases) {
    const auto mol = from_smiles(s);
    ASSERT_TRUE(mol.has_value()) << s;
    const auto canon1 = to_smiles(*mol);
    ASSERT_TRUE(canon1.has_value()) << s;
    const auto mol2 = from_smiles(*canon1);
    ASSERT_TRUE(mol2.has_value()) << s << " -> " << *canon1;
    const auto canon2 = to_smiles(*mol2);
    ASSERT_TRUE(canon2.has_value());
    EXPECT_EQ(*canon1, *canon2) << "input " << s;
    EXPECT_EQ(mol->num_atoms(), mol2->num_atoms()) << s;
  }
}

// Property: the canonical SMILES is invariant under relabeling of atoms.
class CanonicalInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CanonicalInvariance, PermutedEncodingsGiveSameCanonicalSmiles) {
  sqvae::Rng rng(GetParam());
  const auto config = sqvae::data::qm9_config(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Molecule mol = sqvae::data::generate_molecule(config, rng);
    if (mol.num_atoms() < 2) continue;
    const auto original = to_smiles(mol);
    ASSERT_TRUE(original.has_value());

    // Random permutation of atom indices.
    const auto perm =
        rng.permutation(static_cast<std::size_t>(mol.num_atoms()));
    Molecule shuffled;
    std::vector<int> new_index(perm.size());
    for (std::size_t new_pos = 0; new_pos < perm.size(); ++new_pos) {
      new_index[perm[new_pos]] = static_cast<int>(new_pos);
      shuffled.add_atom(mol.atom(static_cast<int>(perm[new_pos])));
    }
    for (const Bond& b : mol.bonds()) {
      shuffled.set_bond(new_index[static_cast<std::size_t>(b.a)],
                        new_index[static_cast<std::size_t>(b.b)], b.type);
    }
    const auto permuted = to_smiles(shuffled);
    ASSERT_TRUE(permuted.has_value());
    EXPECT_EQ(*original, *permuted)
        << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalInvariance,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u));

TEST(CanonicalRanks, ProducesPermutation) {
  const Molecule m = from_smiles("Cc1ccccc1").value();
  const std::vector<int> ranks = canonical_ranks(m);
  std::set<int> unique(ranks.begin(), ranks.end());
  EXPECT_EQ(unique.size(), ranks.size());
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), m.num_atoms() - 1);
}

}  // namespace
}  // namespace sqvae::chem
