// Golden equivalence of the dispatched kernel table against the scalar
// reference table, for every gate class, every register width 1..10, and
// every target/control qubit position.
//
// Where the vectorised kernels perform only moves and sign flips
// (CNOT/CZ/SWAP) the comparison is bitwise; where they reassociate
// arithmetic (FMA in the 2x2 and diagonal kernels, vector-lane reduction
// order in the inner products) the comparison uses a 1e-12 absolute
// tolerance — orders of magnitude below anything training can resolve.
//
// On machines without AVX2 (or with -DSQVAE_SIMD=OFF) the dispatched table
// IS the scalar table and every comparison is trivially exact; the suite
// still runs so the scalar kernels stay continuously exercised, and CI
// additionally re-runs everything with SQVAE_FORCE_SCALAR=1.
#include "qsim/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numbers>
#include <vector>

#include "common/rng.h"
#include "qsim/gates.h"
#include "qsim/statevector.h"

namespace sqvae::qsim {
namespace {

constexpr double kTol = 1e-12;

std::vector<cplx> random_amps(int num_qubits, Rng& rng) {
  std::vector<cplx> amps(std::size_t{1} << num_qubits);
  double norm_sq = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.normal(), rng.normal()};
    norm_sq += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (cplx& a : amps) a *= inv;
  return amps;
}

Mat2 random_unitary(Rng& rng) {
  // Product of three random rotations spans enough of U(2) to catch any
  // lane mix-up; unitarity keeps repeated application well-conditioned.
  const Mat2 a = gate_matrix(GateKind::kRZ, rng.uniform(-3.0, 3.0));
  const Mat2 b = gate_matrix(GateKind::kRY, rng.uniform(-3.0, 3.0));
  const Mat2 c = gate_matrix(GateKind::kRX, rng.uniform(-3.0, 3.0));
  return matmul2(a, matmul2(b, c));
}

void expect_amps_near(const std::vector<cplx>& a, const std::vector<cplx>& b,
                      double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, tol) << "amplitude " << i;
  }
}

void expect_amps_bitwise(const std::vector<cplx>& a,
                         const std::vector<cplx>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)), 0);
}

/// The table under test: dispatched (AVX2 on capable hosts) vs scalar.
const kernels::KernelTable& dispatched() { return kernels::active(); }
const kernels::KernelTable& scalar() { return kernels::scalar_table(); }

TEST(Kernels, DispatchReportsAConsistentIsa) {
  const kernels::Isa isa = kernels::active_isa();
  if (isa == kernels::Isa::kAvx2) {
    // avx2 can only be picked when the TU is compiled in and supported.
    EXPECT_TRUE(kernels::compiled_with_simd());
    EXPECT_NE(kernels::avx2_table_if_supported(), nullptr);
    EXPECT_EQ(&kernels::active(), kernels::avx2_table_if_supported());
  } else {
    EXPECT_EQ(&kernels::active(), &kernels::scalar_table());
  }
  EXPECT_STREQ(kernels::isa_name(kernels::Isa::kScalar), "scalar");
  EXPECT_STREQ(kernels::isa_name(kernels::Isa::kAvx2), "avx2");
}

TEST(Kernels, ApplySingleMatchesScalarAtEveryTarget) {
  Rng rng(101);
  for (int n = 1; n <= 10; ++n) {
    const std::size_t dim = std::size_t{1} << n;
    for (int target = 0; target < n; ++target) {
      const Mat2 m = random_unitary(rng);
      std::vector<cplx> a = random_amps(n, rng);
      std::vector<cplx> b = a;
      scalar().apply_single(a.data(), dim, m, target);
      dispatched().apply_single(b.data(), dim, m, target);
      expect_amps_near(a, b, kTol);
    }
  }
}

TEST(Kernels, ApplyControlledSingleMatchesScalarAtEveryPosition) {
  Rng rng(102);
  for (int n = 2; n <= 10; ++n) {
    const std::size_t dim = std::size_t{1} << n;
    for (int control = 0; control < n; ++control) {
      for (int target = 0; target < n; ++target) {
        if (control == target) continue;
        const Mat2 m = random_unitary(rng);
        std::vector<cplx> a = random_amps(n, rng);
        std::vector<cplx> b = a;
        scalar().apply_controlled_single(a.data(), dim, m, control, target);
        dispatched().apply_controlled_single(b.data(), dim, m, control,
                                             target);
        expect_amps_near(a, b, kTol);
      }
    }
  }
}

TEST(Kernels, CnotCzSwapAreBitwiseIdenticalAtEveryPosition) {
  Rng rng(103);
  for (int n = 2; n <= 10; ++n) {
    const std::size_t dim = std::size_t{1} << n;
    for (int q0 = 0; q0 < n; ++q0) {
      for (int q1 = 0; q1 < n; ++q1) {
        if (q0 == q1) continue;
        // Pure amplitude moves / sign flips: the vector path must agree
        // with the scalar path to the last bit.
        {
          std::vector<cplx> a = random_amps(n, rng);
          std::vector<cplx> b = a;
          scalar().apply_cnot(a.data(), dim, q0, q1);
          dispatched().apply_cnot(b.data(), dim, q0, q1);
          expect_amps_bitwise(a, b);
        }
        {
          std::vector<cplx> a = random_amps(n, rng);
          std::vector<cplx> b = a;
          scalar().apply_cz(a.data(), dim, q0, q1);
          dispatched().apply_cz(b.data(), dim, q0, q1);
          expect_amps_bitwise(a, b);
        }
        {
          std::vector<cplx> a = random_amps(n, rng);
          std::vector<cplx> b = a;
          scalar().apply_swap(a.data(), dim, q0, q1);
          dispatched().apply_swap(b.data(), dim, q0, q1);
          expect_amps_bitwise(a, b);
        }
      }
    }
  }
}

TEST(Kernels, TwoQubitKernelsMatchTheSeedSemantics) {
  // The new bit-enumeration loops must reproduce the textbook definitions:
  // CNOT permutes |c=1,t> -> |c=1,1-t>, CZ flips the |11> phase, SWAP
  // exchanges the qubits' roles in the basis index.
  Rng rng(104);
  const int n = 5;
  const std::size_t dim = std::size_t{1} << n;
  for (int control = 0; control < n; ++control) {
    for (int target = 0; target < n; ++target) {
      if (control == target) continue;
      const std::size_t cbit = std::size_t{1} << control;
      const std::size_t tbit = std::size_t{1} << target;
      const std::vector<cplx> in = random_amps(n, rng);

      std::vector<cplx> out = in;
      scalar().apply_cnot(out.data(), dim, control, target);
      for (std::size_t i = 0; i < dim; ++i) {
        const std::size_t src = (i & cbit) ? (i ^ tbit) : i;
        EXPECT_EQ(out[i], in[src]) << "cnot index " << i;
      }

      out = in;
      scalar().apply_cz(out.data(), dim, control, target);
      for (std::size_t i = 0; i < dim; ++i) {
        const cplx want = ((i & cbit) && (i & tbit)) ? -in[i] : in[i];
        EXPECT_EQ(out[i], want) << "cz index " << i;
      }

      out = in;
      scalar().apply_swap(out.data(), dim, control, target);
      for (std::size_t i = 0; i < dim; ++i) {
        std::size_t src = i & ~(cbit | tbit);
        if (i & cbit) src |= tbit;
        if (i & tbit) src |= cbit;
        EXPECT_EQ(out[i], in[src]) << "swap index " << i;
      }
    }
  }
}

kernels::DiagonalRun random_diagonal_run(int num_qubits, Rng& rng) {
  kernels::DiagonalRun run;
  for (int q = 0; q < num_qubits; ++q) {
    if (rng.bernoulli(0.7)) {
      const Mat2 m = gate_matrix(GateKind::kRZ, rng.uniform(-3.0, 3.0));
      run.push_factor(q, m[0], m[3]);
    }
  }
  const int pairs = num_qubits >= 2 ? rng.uniform_int(0, 3) : 0;
  for (int p = 0; p < pairs; ++p) {
    const int c = rng.uniform_int(0, num_qubits - 1);
    int t = rng.uniform_int(0, num_qubits - 2);
    if (t >= c) ++t;
    if (rng.bernoulli(0.5)) {
      run.push_pair(c, t, cplx{1.0, 0.0}, cplx{-1.0, 0.0});  // CZ
    } else {
      const Mat2 m = gate_matrix(GateKind::kCRZ, rng.uniform(-3.0, 3.0));
      run.push_pair(c, t, m[0], m[3]);
    }
  }
  return run;
}

/// Direct per-index evaluation of the run's phase — the semantic oracle
/// for build_diagonal_table().
cplx reference_phase(const kernels::DiagonalRun& run, std::size_t i) {
  cplx phase{1.0, 0.0};
  for (const auto& f : run.factors) {
    phase *= (i >> f.qubit) & 1 ? f.d1 : f.d0;
  }
  for (const auto& p : run.pairs) {
    if ((i >> p.control) & 1) phase *= (i >> p.target) & 1 ? p.p11 : p.p10;
  }
  return phase;
}

TEST(Kernels, DiagonalTableMatchesPerIndexPhases) {
  Rng rng(105);
  for (int n = 1; n <= 10; ++n) {
    for (int trial = 0; trial < 4; ++trial) {
      const kernels::DiagonalRun run = random_diagonal_run(n, rng);
      std::vector<cplx> table;
      kernels::build_diagonal_table(run, n, table);
      ASSERT_EQ(table.size(), std::size_t{1} << n);
      for (std::size_t i = 0; i < table.size(); ++i) {
        EXPECT_NEAR(std::abs(table[i] - reference_phase(run, i)), 0.0, kTol)
            << "n=" << n << " index " << i;
      }
    }
  }
}

TEST(Kernels, ApplyDiagonalTableMatchesScalar) {
  Rng rng(106);
  for (int n = 1; n <= 10; ++n) {
    const std::size_t dim = std::size_t{1} << n;
    const kernels::DiagonalRun run = random_diagonal_run(n, rng);
    std::vector<cplx> table;
    kernels::build_diagonal_table(run, n, table);
    std::vector<cplx> a = random_amps(n, rng);
    std::vector<cplx> b = a;
    scalar().apply_diagonal_table(a.data(), dim, table.data());
    dispatched().apply_diagonal_table(b.data(), dim, table.data());
    expect_amps_near(a, b, kTol);
  }
}

TEST(Kernels, DiagonalRunEqualsGateByGateApplication) {
  // Applying the run in one fused pass must equal applying each factor and
  // pair as individual gates through the (dispatched) gate kernels.
  Rng rng(107);
  for (int n = 2; n <= 8; ++n) {
    const kernels::DiagonalRun run = random_diagonal_run(n, rng);
    Statevector fused(random_amps(n, rng));
    Statevector stepwise = fused;

    fused.apply_diagonal_run(run);
    for (const auto& f : run.factors) {
      const Mat2 m{f.d0, cplx{0.0, 0.0}, cplx{0.0, 0.0}, f.d1};
      stepwise.apply_single(m, f.qubit);
    }
    for (const auto& p : run.pairs) {
      const Mat2 m{p.p10, cplx{0.0, 0.0}, cplx{0.0, 0.0}, p.p11};
      stepwise.apply_controlled_single(m, p.control, p.target);
    }
    for (std::size_t i = 0; i < fused.dim(); ++i) {
      EXPECT_NEAR(std::abs(fused[i] - stepwise[i]), 0.0, kTol);
    }
  }
}

TEST(Kernels, PushFactorAndPushPairMergeDuplicates) {
  kernels::DiagonalRun run;
  run.push_factor(2, cplx{0.0, 1.0}, cplx{1.0, 0.0});
  run.push_factor(2, cplx{0.0, -1.0}, cplx{-1.0, 0.0});
  ASSERT_EQ(run.factors.size(), 1u);
  EXPECT_NEAR(std::abs(run.factors[0].d0 - cplx{1.0, 0.0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(run.factors[0].d1 - cplx{-1.0, 0.0}), 0.0, kTol);

  run.push_pair(0, 1, cplx{1.0, 0.0}, cplx{-1.0, 0.0});
  run.push_pair(0, 1, cplx{1.0, 0.0}, cplx{-1.0, 0.0});
  ASSERT_EQ(run.pairs.size(), 1u);
  EXPECT_NEAR(std::abs(run.pairs[0].p11 - cplx{1.0, 0.0}), 0.0, kTol);
}

TEST(Kernels, ReductionsMatchScalar) {
  Rng rng(108);
  for (int n = 1; n <= 10; ++n) {
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<cplx> a = random_amps(n, rng);
    const std::vector<cplx> b = random_amps(n, rng);

    const cplx inner_s = scalar().inner(a.data(), b.data(), dim);
    const cplx inner_d = dispatched().inner(a.data(), b.data(), dim);
    EXPECT_NEAR(std::abs(inner_s - inner_d), 0.0, kTol);

    EXPECT_NEAR(scalar().norm_squared(a.data(), dim),
                dispatched().norm_squared(a.data(), dim), kTol);

    for (int q = 0; q < n; ++q) {
      EXPECT_NEAR(scalar().expectation_z(a.data(), dim, q),
                  dispatched().expectation_z(a.data(), dim, q), kTol)
          << "qubit " << q;
    }

    std::vector<double> probs_s(dim);
    std::vector<double> probs_d(dim);
    scalar().probabilities(a.data(), dim, probs_s.data());
    dispatched().probabilities(a.data(), dim, probs_d.data());
    for (std::size_t i = 0; i < dim; ++i) {
      EXPECT_NEAR(probs_s[i], probs_d[i], kTol);
    }

    std::vector<double> diag(dim);
    for (double& d : diag) d = rng.uniform(-2.0, 2.0);
    std::vector<cplx> lambda_s(dim);
    std::vector<cplx> lambda_d(dim);
    const double v_s = scalar().apply_diag_observable(diag.data(), a.data(),
                                                      lambda_s.data(), dim);
    const double v_d = dispatched().apply_diag_observable(
        diag.data(), a.data(), lambda_d.data(), dim);
    EXPECT_NEAR(v_s, v_d, kTol);
    expect_amps_near(lambda_s, lambda_d, kTol);
  }
}

TEST(Kernels, AvxTableAgreesWithScalarWhenPresent) {
  // Direct A/B of the two concrete tables (independent of what dispatch
  // picked — this also covers hosts where SQVAE_FORCE_SCALAR pinned the
  // scalar path but AVX2 is available).
  const kernels::KernelTable* avx2 = kernels::avx2_table_if_supported();
  if (avx2 == nullptr) {
    GTEST_SKIP() << "AVX2 kernels not compiled in or not supported";
  }
  Rng rng(109);
  const int n = 9;
  const std::size_t dim = std::size_t{1} << n;
  const Mat2 m = random_unitary(rng);
  for (int target = 0; target < n; ++target) {
    std::vector<cplx> a = random_amps(n, rng);
    std::vector<cplx> b = a;
    scalar().apply_single(a.data(), dim, m, target);
    avx2->apply_single(b.data(), dim, m, target);
    expect_amps_near(a, b, kTol);
  }
}

}  // namespace
}  // namespace sqvae::qsim
