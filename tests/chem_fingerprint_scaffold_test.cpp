#include <gtest/gtest.h>

#include "chem/fingerprint.h"
#include "chem/scaffold.h"
#include "chem/smiles.h"
#include "common/rng.h"
#include "data/molecule_gen.h"

namespace sqvae::chem {
namespace {

Molecule mol(const char* smiles) {
  auto m = from_smiles(smiles);
  EXPECT_TRUE(m.has_value()) << smiles;
  return *m;
}

TEST(Fingerprint, IdenticalMoleculesAreIdentical) {
  const Fingerprint a = morgan_fingerprint(mol("Cc1ccccc1"));
  const Fingerprint b = morgan_fingerprint(mol("Cc1ccccc1"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(tanimoto(a, b), 1.0);
}

TEST(Fingerprint, InvariantUnderAtomRelabeling) {
  sqvae::Rng rng(5);
  const auto config = sqvae::data::qm9_config(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Molecule m = sqvae::data::generate_molecule(config, rng);
    const auto perm = rng.permutation(static_cast<std::size_t>(m.num_atoms()));
    Molecule shuffled;
    std::vector<int> new_index(perm.size());
    for (std::size_t pos = 0; pos < perm.size(); ++pos) {
      new_index[perm[pos]] = static_cast<int>(pos);
      shuffled.add_atom(m.atom(static_cast<int>(perm[pos])));
    }
    for (const Bond& b : m.bonds()) {
      shuffled.set_bond(new_index[static_cast<std::size_t>(b.a)],
                        new_index[static_cast<std::size_t>(b.b)], b.type);
    }
    EXPECT_EQ(morgan_fingerprint(m), morgan_fingerprint(shuffled))
        << "trial " << trial;
  }
}

TEST(Fingerprint, SimilarBeatsDissimilar) {
  const Fingerprint toluene = morgan_fingerprint(mol("Cc1ccccc1"));
  const Fingerprint ethylbenzene = morgan_fingerprint(mol("CCc1ccccc1"));
  const Fingerprint glycine = morgan_fingerprint(mol("NCC(=O)O"));
  EXPECT_GT(tanimoto(toluene, ethylbenzene), tanimoto(toluene, glycine));
}

TEST(Fingerprint, EmptyMoleculeYieldsEmptyFingerprint) {
  Molecule empty;
  const Fingerprint fp = morgan_fingerprint(empty);
  EXPECT_EQ(fp.count(), 0u);
  EXPECT_EQ(tanimoto(fp, fp), 1.0);  // defined as 1 for two empty sets
}

TEST(Fingerprint, RadiusWidensBitCount) {
  const Molecule m = mol("CC(=O)Oc1ccccc1");
  EXPECT_LE(morgan_fingerprint(m, 0).count(),
            morgan_fingerprint(m, 1).count());
  EXPECT_LE(morgan_fingerprint(m, 1).count(),
            morgan_fingerprint(m, 2).count());
}

TEST(Fingerprint, InternalDiversityBehaviour) {
  std::vector<Fingerprint> same = {morgan_fingerprint(mol("CCO")),
                                   morgan_fingerprint(mol("CCO"))};
  EXPECT_NEAR(internal_diversity(same), 0.0, 1e-12);

  std::vector<Fingerprint> mixed = {
      morgan_fingerprint(mol("CCO")), morgan_fingerprint(mol("c1ccccc1")),
      morgan_fingerprint(mol("FC(F)F"))};
  EXPECT_GT(internal_diversity(mixed), 0.5);
  EXPECT_EQ(internal_diversity({}), 0.0);
}

TEST(Fingerprint, NearestSimilarity) {
  const std::vector<Fingerprint> refs = {
      morgan_fingerprint(mol("Cc1ccccc1")),
      morgan_fingerprint(mol("NCC(=O)O"))};
  EXPECT_EQ(nearest_similarity(morgan_fingerprint(mol("Cc1ccccc1")), refs),
            1.0);
  EXPECT_EQ(nearest_similarity(morgan_fingerprint(mol("CCO")), {}), 0.0);
}

TEST(Scaffold, AcyclicMoleculeHasEmptyScaffold) {
  EXPECT_TRUE(murcko_scaffold(mol("CCO")).empty());
  EXPECT_FALSE(scaffold_smiles(mol("CCCCC")).has_value());
}

TEST(Scaffold, TolueneScaffoldIsBenzene) {
  const auto s = scaffold_smiles(mol("Cc1ccccc1"));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, "c1ccccc1");
}

TEST(Scaffold, LinkerBetweenRingsIsKept) {
  // Two phenyl rings joined by an ethylene linker: the linker stays, the
  // terminal methyl goes.
  const Molecule m = mol("Cc1ccccc1CCc1ccccc1");
  const Molecule scaffold = murcko_scaffold(m);
  EXPECT_EQ(scaffold.num_atoms(), 14);  // 12 ring atoms + 2 linker carbons
}

TEST(Scaffold, RingMoleculeIsItsOwnScaffold) {
  const Molecule m = mol("c1ccccc1");
  EXPECT_EQ(murcko_scaffold(m).num_atoms(), 6);
}

TEST(Lipinski, SmallDrugPasses) {
  const LipinskiReport r = lipinski(mol("CC(=O)Oc1ccccc1"));
  EXPECT_EQ(r.violations, 0);
  EXPECT_TRUE(r.passes);
}

TEST(Lipinski, ViolationsCounted) {
  // A very greasy long chain: logP > 5 is one violation (passes <= 1).
  Molecule chain;
  int prev = chain.add_atom(Element::kC);
  for (int i = 0; i < 29; ++i) {
    const int next = chain.add_atom(Element::kC);
    chain.set_bond(prev, next, BondType::kSingle);
    prev = next;
  }
  const LipinskiReport r = lipinski(chain);
  EXPECT_GE(r.violations, 1);
  EXPECT_GT(r.logp, 5.0);
}

TEST(Formula, HillNotation) {
  EXPECT_EQ(molecular_formula(mol("c1ccccc1")), "C6H6");
  EXPECT_EQ(molecular_formula(mol("CCO")), "C2H6O");
  EXPECT_EQ(molecular_formula(mol("C")), "CH4");
  EXPECT_EQ(molecular_formula(mol("NC(=O)N")), "CH4N2O");  // urea
  EXPECT_EQ(molecular_formula(mol("FC(F)(F)F")), "CF4");
  Molecule empty;
  EXPECT_EQ(molecular_formula(empty), "");
}

}  // namespace
}  // namespace sqvae::chem
