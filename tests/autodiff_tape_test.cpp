#include "autodiff/tape.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"

namespace sqvae::ad {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng,
                     double lo = -1.0, double hi = 1.0) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = rng.uniform(lo, hi);
  return m;
}

/// Checks d(scalar graph)/d(param) against central finite differences for
/// every element of `param`.
void check_gradient(Parameter& param,
                    const std::function<double()>& scalar_eval,
                    const std::function<Var(Tape&)>& graph_builder,
                    double tol = 1e-5) {
  Tape tape;
  Var loss = graph_builder(tape);
  param.zero_grad();
  tape.backward(loss);
  const Matrix analytic = param.grad;

  const double eps = 1e-6;
  for (std::size_t i = 0; i < param.value.size(); ++i) {
    const double saved = param.value[i];
    param.value[i] = saved + eps;
    const double plus = scalar_eval();
    param.value[i] = saved - eps;
    const double minus = scalar_eval();
    param.value[i] = saved;
    EXPECT_NEAR(analytic[i], (plus - minus) / (2 * eps), tol)
        << "element " << i;
  }
}

TEST(Tape, MatmulForwardAndGradients) {
  Rng rng(1);
  Parameter a(random_matrix(3, 4, rng));
  Parameter b(random_matrix(4, 2, rng));
  auto build = [&](Tape& t) {
    Var out = t.matmul(t.leaf(&a), t.leaf(&b));
    // Reduce to scalar with MSE against zeros: loss = mean(out^2).
    return t.mse_loss(out, Matrix(3, 2));
  };
  auto eval = [&]() {
    Tape t;
    return t.value(build(t))(0, 0);
  };
  check_gradient(a, eval, build);
  check_gradient(b, eval, build);
}

TEST(Tape, AddBiasBroadcastsRow) {
  Rng rng(2);
  Parameter x(random_matrix(4, 3, rng));
  Parameter bias(random_matrix(1, 3, rng));
  auto build = [&](Tape& t) {
    return t.mse_loss(t.add_bias(t.leaf(&x), t.leaf(&bias)), Matrix(4, 3, 0.5));
  };
  auto eval = [&]() {
    Tape t;
    return t.value(build(t))(0, 0);
  };
  check_gradient(x, eval, build);
  check_gradient(bias, eval, build);
}

class ElementwiseOp
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ElementwiseOp, GradientMatchesFiniteDifference) {
  const auto [op_name, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  // Keep values in ranges where the op is smooth (away from ReLU's kink).
  Parameter x(random_matrix(3, 3, rng, 0.1, 2.0));
  Parameter y(random_matrix(3, 3, rng, 0.1, 2.0));
  const std::string name = op_name;
  auto apply = [name](Tape& t, Var a, Var b) {
    if (name == "relu") return t.relu(a);
    if (name == "sigmoid") return t.sigmoid(a);
    if (name == "tanh") return t.tanh_(a);
    if (name == "exp") return t.exp_(a);
    if (name == "mul") return t.mul(a, b);
    if (name == "add") return t.add(a, b);
    if (name == "sub") return t.sub(a, b);
    if (name == "scale") return t.scale(a, -1.7);
    return a;
  };
  auto build = [&](Tape& t) {
    Var out = apply(t, t.leaf(&x), t.leaf(&y));
    return t.mse_loss(out, Matrix(3, 3, 0.3));
  };
  auto eval = [&]() {
    Tape t;
    return t.value(build(t))(0, 0);
  };
  check_gradient(x, eval, build);
  if (name == "mul" || name == "add" || name == "sub") {
    check_gradient(y, eval, build);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, ElementwiseOp,
    ::testing::Values(std::tuple{std::string("relu"), 10},
                      std::tuple{std::string("sigmoid"), 11},
                      std::tuple{std::string("tanh"), 12},
                      std::tuple{std::string("exp"), 13},
                      std::tuple{std::string("mul"), 14},
                      std::tuple{std::string("add"), 15},
                      std::tuple{std::string("sub"), 16},
                      std::tuple{std::string("scale"), 17}));

TEST(Tape, ReluForwardClampsNegatives) {
  Tape t;
  Var x = t.constant(Matrix{{-1.0, 0.0, 2.5}});
  const Matrix& y = t.value(t.relu(x));
  EXPECT_EQ(y(0, 0), 0.0);
  EXPECT_EQ(y(0, 1), 0.0);
  EXPECT_EQ(y(0, 2), 2.5);
}

TEST(Tape, SigmoidForwardValues) {
  Tape t;
  Var x = t.constant(Matrix{{0.0}});
  EXPECT_NEAR(t.value(t.sigmoid(x))(0, 0), 0.5, 1e-12);
}

TEST(Tape, SliceConcatRoundTrip) {
  Rng rng(3);
  Parameter x(random_matrix(2, 6, rng));
  auto build = [&](Tape& t) {
    Var v = t.leaf(&x);
    Var left = t.slice_cols(v, 0, 3);
    Var right = t.slice_cols(v, 3, 3);
    Var joined = t.concat_cols({left, right});
    return t.mse_loss(joined, Matrix(2, 6, 0.1));
  };
  Tape t;
  Var loss = build(t);
  // Forward: concat(slice) reproduces the original values.
  // (verified via the loss being the same as direct mse)
  const double direct = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < x.value.size(); ++i) {
      const double d = x.value[i] - 0.1;
      s += d * d;
    }
    return s / static_cast<double>(x.value.size());
  }();
  EXPECT_NEAR(t.value(loss)(0, 0), direct, 1e-12);
  auto eval = [&]() {
    Tape tt;
    return tt.value(build(tt))(0, 0);
  };
  check_gradient(x, eval, build);
}

TEST(Tape, KlGaussianValueAndGradient) {
  // KL(N(mu, e^lv) || N(0,1)) per element = 0.5 (e^lv + mu^2 - 1 - lv).
  Rng rng(4);
  Parameter mu(random_matrix(2, 3, rng));
  Parameter logvar(random_matrix(2, 3, rng, -1.0, 1.0));
  auto build = [&](Tape& t) {
    return t.kl_gaussian(t.leaf(&mu), t.leaf(&logvar));
  };
  Tape t;
  Var kl = build(t);
  double expected = 0.0;
  for (std::size_t i = 0; i < mu.value.size(); ++i) {
    expected += 0.5 * (std::exp(logvar.value[i]) +
                       mu.value[i] * mu.value[i] - 1.0 - logvar.value[i]);
  }
  expected /= 2.0;  // batch mean (2 rows)
  EXPECT_NEAR(t.value(kl)(0, 0), expected, 1e-12);

  auto eval = [&]() {
    Tape tt;
    return tt.value(build(tt))(0, 0);
  };
  check_gradient(mu, eval, build);
  check_gradient(logvar, eval, build);
}

TEST(Tape, KlIsZeroForStandardNormal) {
  Tape t;
  Var kl = t.kl_gaussian(t.constant(Matrix(3, 4)), t.constant(Matrix(3, 4)));
  EXPECT_NEAR(t.value(kl)(0, 0), 0.0, 1e-12);
}

TEST(Tape, MseLossValue) {
  Tape t;
  Var pred = t.constant(Matrix{{1.0, 2.0}, {3.0, 4.0}});
  Var loss = t.mse_loss(pred, Matrix{{0.0, 2.0}, {3.0, 2.0}});
  EXPECT_NEAR(t.value(loss)(0, 0), (1.0 + 0.0 + 0.0 + 4.0) / 4.0, 1e-12);
}

TEST(Tape, CustomOpBackwardReceivesUpstreamGradient) {
  // Custom op: y = 3x. Backward must push 3 * upstream.
  Rng rng(5);
  Parameter x(random_matrix(2, 2, rng));
  auto build = [&](Tape& t) {
    Var xv = t.leaf(&x);
    Matrix y = t.value(xv) * 3.0;
    Var out = t.custom({xv}, std::move(y), [xv](Tape& tt, const Matrix& g) {
      tt.accum_grad(xv, g * 3.0);
    });
    return t.mse_loss(out, Matrix(2, 2, 1.0));
  };
  auto eval = [&]() {
    Tape t;
    return t.value(build(t))(0, 0);
  };
  check_gradient(x, eval, build);
}

TEST(Tape, GradientsAccumulateAcrossBackwardPasses) {
  Parameter x(Matrix{{2.0}});
  for (int pass = 0; pass < 3; ++pass) {
    Tape t;
    Var loss = t.mse_loss(t.leaf(&x), Matrix(1, 1));  // d/dx = 2x = 4
    t.backward(loss);
  }
  EXPECT_NEAR(x.grad(0, 0), 3 * 4.0, 1e-12);
  x.zero_grad();
  EXPECT_EQ(x.grad(0, 0), 0.0);
}

TEST(Tape, ConstantsReceiveNoGradient) {
  Tape t;
  Var c = t.constant(Matrix{{1.0, 2.0}});
  Parameter p(Matrix{{3.0, 4.0}});
  Var loss = t.mse_loss(t.mul(c, t.leaf(&p)), Matrix(1, 2));
  t.backward(loss);
  EXPECT_FALSE(t.requires_grad(c));
  EXPECT_GT(std::abs(p.grad(0, 0)), 0.0);
}

TEST(Tape, DiamondGraphAccumulatesBothPaths) {
  // loss = mean((x + x)^2): d/dx = 4x/n per element times 2... checked by FD.
  Rng rng(6);
  Parameter x(random_matrix(2, 2, rng));
  auto build = [&](Tape& t) {
    Var v = t.leaf(&x);
    return t.mse_loss(t.add(v, v), Matrix(2, 2));
  };
  auto eval = [&]() {
    Tape t;
    return t.value(build(t))(0, 0);
  };
  check_gradient(x, eval, build);
}

}  // namespace
}  // namespace sqvae::ad
