// Tests of the data-parallel training engine and true checkpoint/resume:
// sample-weighted epoch statistics, bit-identical training across OpenMP
// thread counts, v2 checkpoints that round-trip optimizer + RNG state, and
// kill-and-resume runs reproducing the uninterrupted trajectory exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/digits.h"
#include "models/checkpoint.h"
#include "models/classical.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

namespace sqvae::models {
namespace {

Matrix digits_matrix(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  const auto digits = data::make_digits(count, rng);
  return data::scale(digits.features, 1.0 / 16.0).samples;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return buffer.str();
}

TEST(TrainerEngine, SerialEpochStatsWeightedBySampleCount) {
  // 10 samples in batches of 4 -> sizes 4, 4, 2. With zero learning rates
  // the parameters never move, so the epoch averages must equal the
  // sample-weighted mean of per-batch losses computed independently here.
  const Matrix data = digits_matrix(10, 21);
  Rng model_rng(22);
  ClassicalAe model(classical_config_64(4), model_rng);

  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 4;
  config.quantum_lr = 0.0;
  config.classical_lr = 0.0;
  config.data_parallel = false;
  Trainer trainer(model, config);
  Rng fit_rng(23);
  const auto history = trainer.fit(data, nullptr, fit_rng);
  ASSERT_EQ(history.size(), 1u);

  // Replay the identical batch schedule (same rng seed, same consumption
  // order) and accumulate the expected weighted sums.
  Rng replay_rng(23);
  const auto batches = data::make_batches(data.rows(), 4, replay_rng);
  ASSERT_EQ(batches.size(), 3u);
  ASSERT_EQ(batches.back().size(), 2u);
  double loss_sum = 0.0, mse_sum = 0.0;
  std::size_t samples = 0;
  for (const auto& indices : batches) {
    Matrix batch(indices.size(), data.cols());
    for (std::size_t r = 0; r < indices.size(); ++r) {
      for (std::size_t c = 0; c < data.cols(); ++c) {
        batch(r, c) = data(indices[r], c);
      }
    }
    ad::Tape tape;
    LossStats stats;
    Rng unused(0);
    model.build_loss(tape, batch, unused, &stats);
    loss_sum += stats.total * static_cast<double>(indices.size());
    mse_sum += stats.reconstruction_mse * static_cast<double>(indices.size());
    samples += indices.size();
  }
  ASSERT_EQ(samples, 10u);
  EXPECT_DOUBLE_EQ(history[0].train_loss,
                   loss_sum / static_cast<double>(samples));
  EXPECT_DOUBLE_EQ(history[0].train_mse,
                   mse_sum / static_cast<double>(samples));
}

TEST(TrainerEngine, ShardedBitIdenticalAcrossThreadCounts) {
  // The engine's contract: shard decomposition, per-sample noise streams,
  // and fixed-order reduction are all independent of the thread count, so
  // training is bit-identical at 1 and N threads.
  const Matrix data = digits_matrix(24, 31);
  const auto run = [&data](int threads, std::vector<EpochStats>* history) {
    Rng model_rng(32);
    ScalableQuantumConfig c;
    c.input_dim = 64;
    c.patches = 2;
    c.entangling_layers = 2;
    auto model = make_sq_vae(c, model_rng);
    TrainConfig config;
    config.epochs = 3;
    config.batch_size = 8;
    config.quantum_lr = 0.03;
    config.classical_lr = 0.01;
    config.num_threads = threads;
    Trainer trainer(*model, config);
    Rng fit_rng(33);
    *history = trainer.fit(data, &data, fit_rng);
    return checkpoint_to_text(*model);
  };

  std::vector<EpochStats> h1, h3;
  const std::string params1 = run(1, &h1);
  const std::string params3 = run(3, &h3);
  EXPECT_EQ(params1, params3);
  ASSERT_EQ(h1.size(), h3.size());
  for (std::size_t e = 0; e < h1.size(); ++e) {
    EXPECT_EQ(h1[e].train_loss, h3[e].train_loss) << e;
    EXPECT_EQ(h1[e].train_mse, h3[e].train_mse) << e;
    EXPECT_EQ(h1[e].train_kl, h3[e].train_kl) << e;
    EXPECT_EQ(h1[e].test_mse, h3[e].test_mse) << e;
  }
}

TEST(TrainerEngine, StochasticBackendsForceSerialExecution) {
  Rng rng(41);
  ScalableQuantumConfig c;
  c.input_dim = 64;
  c.patches = 2;
  c.entangling_layers = 1;
  auto model = make_sq_ae(c, rng);
  TrainConfig config;
  config.num_threads = 4;
  EXPECT_GE(Trainer::resolve_threads(*model, config), 1);

  qsim::SimulationOptions sim;
  sim.backend = qsim::BackendKind::kShotSampling;
  model->set_simulation_options(sim);
  EXPECT_TRUE(model->stochastic_forward());
  EXPECT_EQ(Trainer::resolve_threads(*model, config), 1);

  sim.backend = qsim::BackendKind::kStatevector;
  model->set_simulation_options(sim);
  EXPECT_FALSE(model->stochastic_forward());
}

// Shared body for the resume tests: train `total` epochs uninterrupted,
// then train `cut` epochs, "kill", and resume to `total` with a freshly
// constructed model; both checkpoints (parameters + Adam + RNG) and the
// post-cut epoch statistics must match bit-for-bit.
void expect_resume_equivalence(bool data_parallel) {
  const Matrix data = digits_matrix(32, 51);
  const std::string full_path = "/tmp/sqvae_engine_full.ckpt";
  const std::string part_path = "/tmp/sqvae_engine_part.ckpt";
  const std::size_t total = 6, cut = 3;

  TrainConfig base;
  base.epochs = total;
  base.batch_size = 8;
  base.classical_lr = 0.01;
  base.lr_decay = 0.9;
  base.data_parallel = data_parallel;
  base.checkpoint_every = 1;

  // Uninterrupted reference.
  std::vector<EpochStats> full_history;
  {
    Rng model_rng(52);
    ClassicalVae model(classical_config_64(6), model_rng);
    TrainConfig config = base;
    config.checkpoint_path = full_path;
    Trainer trainer(model, config);
    Rng fit_rng(53);
    full_history = trainer.fit(data, &data, fit_rng);
  }
  // Interrupted at `cut`...
  {
    Rng model_rng(52);
    ClassicalVae model(classical_config_64(6), model_rng);
    TrainConfig config = base;
    config.epochs = cut;
    config.checkpoint_path = part_path;
    Trainer trainer(model, config);
    Rng fit_rng(53);
    trainer.fit(data, &data, fit_rng);
  }
  // ...then resumed in a fresh process stand-in: new model (different
  // init), new rng — everything restored from the checkpoint.
  std::vector<EpochStats> resumed_history;
  {
    Rng model_rng(999);
    ClassicalVae model(classical_config_64(6), model_rng);
    TrainConfig config = base;
    config.checkpoint_path = part_path;
    config.resume = true;
    Trainer trainer(model, config);
    Rng fit_rng(999);
    resumed_history = trainer.fit(data, &data, fit_rng);
  }

  EXPECT_EQ(read_file(full_path), read_file(part_path));
  ASSERT_EQ(resumed_history.size(), total - cut);
  for (std::size_t e = 0; e < resumed_history.size(); ++e) {
    const EpochStats& r = resumed_history[e];
    const EpochStats& f = full_history[cut + e];
    EXPECT_EQ(r.epoch, f.epoch);
    EXPECT_EQ(r.train_loss, f.train_loss) << e;
    EXPECT_EQ(r.train_mse, f.train_mse) << e;
    EXPECT_EQ(r.train_kl, f.train_kl) << e;
    EXPECT_EQ(r.test_mse, f.test_mse) << e;
  }
  std::remove(full_path.c_str());
  std::remove(part_path.c_str());
  std::remove((full_path + ".best").c_str());
  std::remove((part_path + ".best").c_str());
}

TEST(TrainerEngine, ResumeEqualsUninterruptedSharded) {
  expect_resume_equivalence(/*data_parallel=*/true);
}

TEST(TrainerEngine, ResumeEqualsUninterruptedSerial) {
  expect_resume_equivalence(/*data_parallel=*/false);
}

TEST(TrainerEngine, EarlyStoppingAndBestTracking) {
  const Matrix data = digits_matrix(16, 61);
  Rng model_rng(62);
  ClassicalAe model(classical_config_64(4), model_rng);
  TrainConfig config;
  config.epochs = 10;
  config.batch_size = 8;
  config.classical_lr = 0.01;
  // An improvement threshold no real epoch can meet: epoch 0 sets the
  // baseline, epoch 1 fails to improve by min_delta, patience 1 stops.
  config.early_stop_patience = 1;
  config.early_stop_min_delta = 1e9;
  Trainer trainer(model, config);
  Rng fit_rng(63);
  const auto history = trainer.fit(data, nullptr, fit_rng);
  EXPECT_EQ(history.size(), 2u);
  // Best-model tracking is independent of min_delta: it records the true
  // argmin of the monitored metric over the epochs that ran.
  ASSERT_TRUE(trainer.has_best());
  const std::size_t argmin =
      history[0].train_loss <= history[1].train_loss ? 0u : 1u;
  EXPECT_EQ(trainer.best_epoch(), argmin);
  EXPECT_EQ(trainer.best_metric(), history[argmin].train_loss);
}

TEST(TrainerEngine, ResumeAfterEarlyStopStaysStopped) {
  // A run that ended via early stopping must not creep further epochs on
  // each --resume invocation: the stored patience counter keeps it stopped.
  const Matrix data = digits_matrix(16, 81);
  const std::string path = "/tmp/sqvae_engine_earlystop.ckpt";
  TrainConfig config;
  config.epochs = 10;
  config.batch_size = 8;
  config.classical_lr = 0.01;
  config.early_stop_patience = 1;
  config.early_stop_min_delta = 1e9;
  config.checkpoint_path = path;
  {
    Rng model_rng(82);
    ClassicalAe model(classical_config_64(4), model_rng);
    Trainer trainer(model, config);
    Rng fit_rng(83);
    EXPECT_EQ(trainer.fit(data, nullptr, fit_rng).size(), 2u);
  }
  {
    Rng model_rng(84);
    ClassicalAe model(classical_config_64(4), model_rng);
    TrainConfig resume_config = config;
    resume_config.resume = true;
    Trainer trainer(model, resume_config);
    Rng fit_rng(85);
    EXPECT_TRUE(trainer.fit(data, nullptr, fit_rng).empty());
  }
  std::remove(path.c_str());
  std::remove((path + ".best").c_str());
}

TEST(TrainerEngine, RestoreBestRewindsParameters) {
  const Matrix data = digits_matrix(24, 71);
  const std::string path = "/tmp/sqvae_engine_best.ckpt";
  Rng model_rng(72);
  ClassicalAe model(classical_config_64(4), model_rng);
  TrainConfig config;
  config.epochs = 5;
  config.batch_size = 8;
  config.classical_lr = 0.01;
  config.checkpoint_path = path;
  config.restore_best = true;
  Trainer trainer(model, config);
  Rng fit_rng(73);
  trainer.fit(data, nullptr, fit_rng);
  ASSERT_TRUE(trainer.has_best());
  // After fit() the model must hold exactly the parameters of the best
  // epoch, which were also persisted to the sibling .best file.
  EXPECT_EQ(checkpoint_to_text(model), read_file(path + ".best"));
  std::remove(path.c_str());
  std::remove((path + ".best").c_str());
}

}  // namespace
}  // namespace sqvae::models
