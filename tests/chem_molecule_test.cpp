#include "chem/molecule.h"

#include <gtest/gtest.h>

#include "chem/molecule_matrix.h"

namespace sqvae::chem {
namespace {

/// Benzene: 6 aromatic carbons in a ring.
Molecule benzene() {
  Molecule m;
  for (int i = 0; i < 6; ++i) m.add_atom(Element::kC);
  for (int i = 0; i < 6; ++i) m.set_bond(i, (i + 1) % 6, BondType::kAromatic);
  return m;
}

/// Ethanol: C-C-O.
Molecule ethanol() {
  Molecule m;
  const int c1 = m.add_atom(Element::kC);
  const int c2 = m.add_atom(Element::kC);
  const int o = m.add_atom(Element::kO);
  m.set_bond(c1, c2, BondType::kSingle);
  m.set_bond(c2, o, BondType::kSingle);
  return m;
}

TEST(Molecule, AddAtomsAndBonds) {
  Molecule m;
  EXPECT_TRUE(m.empty());
  const int a = m.add_atom(Element::kC);
  const int b = m.add_atom(Element::kN);
  m.set_bond(a, b, BondType::kDouble);
  EXPECT_EQ(m.num_atoms(), 2);
  EXPECT_EQ(m.num_bonds(), 1);
  EXPECT_EQ(m.bond_between(a, b), BondType::kDouble);
  EXPECT_EQ(m.bond_between(b, a), BondType::kDouble);  // undirected
}

TEST(Molecule, SetBondReplacesType) {
  Molecule m;
  m.add_atom(Element::kC);
  m.add_atom(Element::kC);
  m.set_bond(0, 1, BondType::kSingle);
  m.set_bond(0, 1, BondType::kTriple);
  EXPECT_EQ(m.num_bonds(), 1);
  EXPECT_EQ(m.bond_between(0, 1), BondType::kTriple);
}

TEST(Molecule, SetBondNoneRemoves) {
  Molecule m;
  m.add_atom(Element::kC);
  m.add_atom(Element::kC);
  m.add_atom(Element::kC);
  m.set_bond(0, 1, BondType::kSingle);
  m.set_bond(1, 2, BondType::kSingle);
  m.set_bond(0, 1, BondType::kNone);
  EXPECT_EQ(m.num_bonds(), 1);
  EXPECT_EQ(m.bond_between(0, 1), BondType::kNone);
  EXPECT_EQ(m.bond_between(1, 2), BondType::kSingle);
  EXPECT_EQ(m.degree(1), 1);
}

TEST(Molecule, ImplicitHydrogensMethane) {
  Molecule m;
  m.add_atom(Element::kC);
  EXPECT_EQ(m.implicit_hydrogens(0), 4);  // CH4
  EXPECT_NEAR(m.molecular_weight(), 12.011 + 4 * 1.008, 1e-9);
}

TEST(Molecule, ImplicitHydrogensEthanol) {
  Molecule m = ethanol();
  EXPECT_EQ(m.implicit_hydrogens(0), 3);  // CH3
  EXPECT_EQ(m.implicit_hydrogens(1), 2);  // CH2
  EXPECT_EQ(m.implicit_hydrogens(2), 1);  // OH
  EXPECT_NEAR(m.molecular_weight(), 46.069, 0.01);  // C2H6O
}

TEST(Molecule, BenzeneValenceAndAromaticity) {
  Molecule m = benzene();
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(m.valence_used(i), 3.0, 1e-12);  // 2 aromatic bonds
    EXPECT_EQ(m.implicit_hydrogens(i), 1);       // C6H6
    EXPECT_TRUE(m.is_aromatic_atom(i));
  }
  EXPECT_TRUE(m.valences_ok());
  EXPECT_NEAR(m.molecular_weight(), 78.11, 0.03);
}

TEST(Molecule, PyridineNitrogenHasNoHydrogen) {
  Molecule m = benzene();
  // Rebuild atom 0 as N by constructing pyridine directly.
  Molecule pyridine;
  pyridine.add_atom(Element::kN);
  for (int i = 0; i < 5; ++i) pyridine.add_atom(Element::kC);
  for (int i = 0; i < 6; ++i) {
    pyridine.set_bond(i, (i + 1) % 6, BondType::kAromatic);
  }
  EXPECT_EQ(pyridine.implicit_hydrogens(0), 0);  // aromatic N: 3.0/3
  EXPECT_TRUE(pyridine.valences_ok());
}

TEST(Molecule, SulfurAllowsHypervalentStates) {
  // S with 4 single bonds: allowed state 4 -> 0 implicit H, valences ok.
  Molecule m;
  const int s = m.add_atom(Element::kS);
  for (int i = 0; i < 4; ++i) {
    const int c = m.add_atom(Element::kC);
    m.set_bond(s, c, BondType::kSingle);
  }
  EXPECT_TRUE(m.valences_ok());
  EXPECT_EQ(m.implicit_hydrogens(s), 0);
  // Plain thioether S uses default valence 2: SH on one bond.
  Molecule t;
  const int s2 = t.add_atom(Element::kS);
  const int c2 = t.add_atom(Element::kC);
  t.set_bond(s2, c2, BondType::kSingle);
  EXPECT_EQ(t.implicit_hydrogens(s2), 1);
}

TEST(Molecule, OvervalentCarbonDetected) {
  Molecule m;
  const int c = m.add_atom(Element::kC);
  for (int i = 0; i < 3; ++i) {
    const int n = m.add_atom(Element::kC);
    m.set_bond(c, n, BondType::kDouble);
  }
  EXPECT_FALSE(m.valences_ok());  // 6 > 4
}

TEST(Molecule, ComponentsAndSubgraph) {
  Molecule m;
  for (int i = 0; i < 5; ++i) m.add_atom(Element::kC);
  m.set_bond(0, 1, BondType::kSingle);
  m.set_bond(1, 2, BondType::kSingle);
  m.set_bond(3, 4, BondType::kDouble);
  int count = 0;
  const std::vector<int> comp = m.components(&count);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);

  const Molecule sub = m.subgraph({3, 4});
  EXPECT_EQ(sub.num_atoms(), 2);
  EXPECT_EQ(sub.num_bonds(), 1);
  EXPECT_EQ(sub.bond_between(0, 1), BondType::kDouble);
}

TEST(Molecule, NeighborsAndDegree) {
  Molecule m = ethanol();
  EXPECT_EQ(m.degree(1), 2);
  const std::vector<int> n = m.neighbors(1);
  EXPECT_EQ(n.size(), 2u);
}

TEST(ElementTable, CodesRoundTrip) {
  for (Element e : kAllElements) {
    Element back;
    ASSERT_TRUE(element_from_code(element_code(e), &back));
    EXPECT_EQ(back, e);
    Element sym_back;
    ASSERT_TRUE(element_from_symbol(element_symbol(e), &sym_back));
    EXPECT_EQ(sym_back, e);
  }
  Element dummy;
  EXPECT_FALSE(element_from_code(0, &dummy));
  EXPECT_FALSE(element_from_code(6, &dummy));
  EXPECT_FALSE(element_from_symbol("H", &dummy));
}

TEST(ElementTable, BondOrders) {
  EXPECT_EQ(bond_order(BondType::kSingle), 1.0);
  EXPECT_EQ(bond_order(BondType::kDouble), 2.0);
  EXPECT_EQ(bond_order(BondType::kTriple), 3.0);
  EXPECT_EQ(bond_order(BondType::kAromatic), 1.5);
  EXPECT_EQ(bond_order(BondType::kNone), 0.0);
}

TEST(MoleculeMatrix, EncodeMatchesPaperLayout) {
  Molecule m = ethanol();
  const Matrix enc = encode_molecule(m, 4);
  // Diagonal: atom codes 1 (C), 1 (C), 3 (O), 0 (pad).
  EXPECT_EQ(enc(0, 0), 1.0);
  EXPECT_EQ(enc(1, 1), 1.0);
  EXPECT_EQ(enc(2, 2), 3.0);
  EXPECT_EQ(enc(3, 3), 0.0);
  // Off-diagonal: symmetric single bonds.
  EXPECT_EQ(enc(0, 1), 1.0);
  EXPECT_EQ(enc(1, 0), 1.0);
  EXPECT_EQ(enc(1, 2), 1.0);
  EXPECT_EQ(enc(0, 2), 0.0);
}

TEST(MoleculeMatrix, DecodeRoundTrip) {
  Molecule m = benzene();
  const Matrix enc = encode_molecule(m, 8);
  const Molecule back = decode_molecule(enc);
  EXPECT_EQ(back.num_atoms(), 6);
  EXPECT_EQ(back.num_bonds(), 6);
  for (const Bond& b : back.bonds()) {
    EXPECT_EQ(b.type, BondType::kAromatic);
  }
}

TEST(MoleculeMatrix, DecodeRoundsNoisyEntries) {
  Matrix noisy(3, 3);
  noisy(0, 0) = 1.2;   // -> C
  noisy(1, 1) = 2.9;   // -> O
  noisy(2, 2) = -0.4;  // -> no atom
  noisy(0, 1) = 0.8;   // -> single (with symmetrisation)
  noisy(1, 0) = 1.1;
  const Molecule m = decode_molecule(noisy);
  EXPECT_EQ(m.num_atoms(), 2);
  EXPECT_EQ(m.atom(0), Element::kC);
  EXPECT_EQ(m.atom(1), Element::kO);
  EXPECT_EQ(m.bond_between(0, 1), BondType::kSingle);
}

TEST(MoleculeMatrix, FeaturesRoundTrip) {
  Molecule m = ethanol();
  const std::vector<double> f = molecule_to_features(m, 8);
  EXPECT_EQ(f.size(), 64u);
  const Molecule back = features_to_molecule(f, 8);
  EXPECT_EQ(back.num_atoms(), 3);
  EXPECT_EQ(back.atom(2), Element::kO);
}

}  // namespace
}  // namespace sqvae::chem
