#include "qsim/gates.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace sqvae::qsim {
namespace {

bool approx(const cplx& a, const cplx& b, double tol = 1e-12) {
  return std::abs(a - b) <= tol;
}

/// U U^dag == I.
void expect_unitary(const Mat2& m) {
  const Mat2 prod = matmul2(m, dagger(m));
  EXPECT_TRUE(approx(prod[0], cplx{1, 0}));
  EXPECT_TRUE(approx(prod[1], cplx{0, 0}));
  EXPECT_TRUE(approx(prod[2], cplx{0, 0}));
  EXPECT_TRUE(approx(prod[3], cplx{1, 0}));
}

class ParameterizedGateUnitarity
    : public ::testing::TestWithParam<std::tuple<GateKind, double>> {};

TEST_P(ParameterizedGateUnitarity, MatrixIsUnitary) {
  const auto [kind, theta] = GetParam();
  expect_unitary(gate_matrix(kind, theta));
}

INSTANTIATE_TEST_SUITE_P(
    RotationsAtAngles, ParameterizedGateUnitarity,
    ::testing::Combine(
        ::testing::Values(GateKind::kRX, GateKind::kRY, GateKind::kRZ,
                          GateKind::kCRX, GateKind::kCRY, GateKind::kCRZ),
        ::testing::Values(-3.0, -0.7, 0.0, 0.1, std::numbers::pi / 2, 2.9)));

TEST(Gates, FixedGatesAreUnitary) {
  for (GateKind k : {GateKind::kH, GateKind::kX, GateKind::kY, GateKind::kZ,
                     GateKind::kS, GateKind::kT}) {
    expect_unitary(gate_matrix(k, 0.0));
  }
}

TEST(Gates, RotationAtZeroIsIdentity) {
  for (GateKind k : {GateKind::kRX, GateKind::kRY, GateKind::kRZ}) {
    const Mat2 m = gate_matrix(k, 0.0);
    EXPECT_TRUE(approx(m[0], cplx{1, 0})) << gate_name(k);
    EXPECT_TRUE(approx(m[3], cplx{1, 0})) << gate_name(k);
    EXPECT_TRUE(approx(m[1], cplx{0, 0})) << gate_name(k);
  }
}

TEST(Gates, RxAtPiIsMinusIX) {
  const Mat2 m = gate_matrix(GateKind::kRX, std::numbers::pi);
  EXPECT_TRUE(approx(m[0], cplx{0, 0}));
  EXPECT_TRUE(approx(m[1], cplx{0, -1}));
  EXPECT_TRUE(approx(m[2], cplx{0, -1}));
  EXPECT_TRUE(approx(m[3], cplx{0, 0}));
}

TEST(Gates, RyMatchesPaperFig3dConvention) {
  // Fig. 3(d): RY(phi) = [[cos(phi/2), -sin(phi/2)], [sin(phi/2), cos(phi/2)]].
  const double phi = 0.8;
  const Mat2 m = gate_matrix(GateKind::kRY, phi);
  EXPECT_TRUE(approx(m[0], cplx{std::cos(phi / 2), 0}));
  EXPECT_TRUE(approx(m[1], cplx{-std::sin(phi / 2), 0}));
  EXPECT_TRUE(approx(m[2], cplx{std::sin(phi / 2), 0}));
  EXPECT_TRUE(approx(m[3], cplx{std::cos(phi / 2), 0}));
}

TEST(Gates, RzMatchesPaperFig3dConvention) {
  // Fig. 3(d): RZ(phi) = diag(e^{-i phi/2}, e^{i phi/2}).
  const double phi = 1.3;
  const Mat2 m = gate_matrix(GateKind::kRZ, phi);
  EXPECT_TRUE(approx(m[0], std::exp(cplx{0, -phi / 2})));
  EXPECT_TRUE(approx(m[3], std::exp(cplx{0, phi / 2})));
}

TEST(Gates, SSquaredIsZ) {
  const Mat2 s = gate_matrix(GateKind::kS, 0.0);
  const Mat2 z = gate_matrix(GateKind::kZ, 0.0);
  const Mat2 ss = matmul2(s, s);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(approx(ss[i], z[i]));
}

TEST(Gates, TSquaredIsS) {
  const Mat2 t = gate_matrix(GateKind::kT, 0.0);
  const Mat2 s = gate_matrix(GateKind::kS, 0.0);
  const Mat2 tt = matmul2(t, t);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(approx(tt[i], s[i]));
}

class GateDerivative
    : public ::testing::TestWithParam<std::tuple<GateKind, double>> {};

TEST_P(GateDerivative, MatchesFiniteDifferenceEntrywise) {
  const auto [kind, theta] = GetParam();
  const double eps = 1e-6;
  const Mat2 plus = gate_matrix(kind, theta + eps);
  const Mat2 minus = gate_matrix(kind, theta - eps);
  const Mat2 d = gate_matrix_derivative(kind, theta);
  for (int i = 0; i < 4; ++i) {
    const cplx fd = (plus[i] - minus[i]) / (2.0 * eps);
    EXPECT_NEAR(std::abs(fd - d[i]), 0.0, 1e-8)
        << gate_name(kind) << " entry " << i << " theta " << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllParamGates, GateDerivative,
    ::testing::Combine(
        ::testing::Values(GateKind::kRX, GateKind::kRY, GateKind::kRZ,
                          GateKind::kCRX, GateKind::kCRY, GateKind::kCRZ),
        ::testing::Values(-2.2, -0.4, 0.0, 0.9, 1.7, 3.0)));

TEST(Gates, Classification) {
  EXPECT_TRUE(is_parameterized(GateKind::kRX));
  EXPECT_TRUE(is_parameterized(GateKind::kCRZ));
  EXPECT_FALSE(is_parameterized(GateKind::kH));
  EXPECT_FALSE(is_parameterized(GateKind::kCNOT));
  EXPECT_TRUE(is_two_qubit(GateKind::kCNOT));
  EXPECT_TRUE(is_two_qubit(GateKind::kSWAP));
  EXPECT_FALSE(is_two_qubit(GateKind::kRY));
}

}  // namespace
}  // namespace sqvae::qsim
