// EventLoopServer: incremental framing over real sockets (byte-at-a-time
// and coalesced request streams parse identically), response ordering,
// the /stats endpoint, connection-limit admission, cache integration over
// TCP, the mid-write disconnect regression (a peer that dies while its
// response is being written must tear down with stats accounting, never
// wedge the loop), and graceful drain.
#include <gtest/gtest.h>

#ifdef __linux__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/event_loop.h"
#include "serve/loaded_model.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/stats.h"

namespace {

using namespace sqvae;

/// Blocking line-oriented test client over a real TCP socket.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void send_all(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }

  void send_byte_at_a_time(const std::string& bytes) {
    for (char c : bytes) send_all(std::string(1, c));
  }

  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  /// Closes with SO_LINGER(0): the kernel sends RST instead of FIN — the
  /// abrupt-death shape of a crashed client.
  void reset() {
    struct linger lg {1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd_);
    fd_ = -1;
  }

  /// Reads until `lines` full lines arrived or the peer closed.
  std::vector<std::string> read_lines(std::size_t lines) {
    std::vector<std::string> out;
    std::string buf;
    char chunk[4096];
    while (out.size() < lines) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while (out.size() < lines && (nl = buf.find('\n')) != std::string::npos) {
        out.push_back(buf.substr(0, nl));
        buf.erase(0, nl + 1);
      }
    }
    return out;
  }

  /// True when the peer has closed (a clean EOF arrives).
  bool read_eof() {
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class EventLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::signal(SIGPIPE, SIG_IGN);
    spec_.kind = "sq-ae";
    spec_.input_dim = 16;
    spec_.patches = 2;
    spec_.entangling_layers = 2;
    std::string error;
    model_ = serve::build_model(spec_, &error);
    ASSERT_NE(model_, nullptr) << error;
    registry_.publish("default",
                      serve::LoadedModel::from_model(spec_, *model_));
  }

  /// Starts the service and the loop (ephemeral port) with the given
  /// configs; the loop runs on its own thread until stop_server().
  void start_server(serve::ServeConfig config = {},
                    serve::EventLoopConfig loop_config = {}) {
    config.threads = 2;
    config.shed_on_full = true;  // the loop must never block in submit
    service_ =
        std::make_unique<serve::InferenceService>(registry_, config, &stats_);
    server_ = std::make_unique<serve::EventLoopServer>(*service_, loop_config,
                                                       stats_);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
    ASSERT_GT(server_->port(), 0);
    loop_thread_ = std::thread([this] { loop_status_ = server_->run(); });
  }

  void stop_server() {
    if (server_ != nullptr && loop_thread_.joinable()) {
      server_->request_stop();
      loop_thread_.join();
    }
    if (service_ != nullptr) service_->shutdown();
  }

  void TearDown() override {
    stop_server();
    service_.reset();  // workers joined above; now safe to drop the server
    server_.reset();
  }

  std::string request_line(int id, std::uint64_t seed) const {
    std::string x = "[";
    for (std::size_t i = 0; i < spec_.input_dim; ++i) {
      if (i > 0) x += ", ";
      x += std::to_string(0.1 + 0.05 * static_cast<double>(i));
    }
    x += "]";
    return "{\"op\": \"encode\", \"id\": " + std::to_string(id) +
           ", \"seed\": " + std::to_string(seed) + ", \"x\": " + x + "}\n";
  }

  /// Polls /stats over a fresh connection until `pred` holds (or 5s).
  template <typename Pred>
  bool stats_eventually(Pred pred) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

  serve::ModelSpec spec_;
  std::unique_ptr<models::Autoencoder> model_;
  serve::ModelRegistry registry_;
  serve::ServerStats stats_;
  std::unique_ptr<serve::InferenceService> service_;
  std::unique_ptr<serve::EventLoopServer> server_;
  std::thread loop_thread_;
  int loop_status_ = -1;
};

TEST_F(EventLoopTest, ByteAtATimeAndCoalescedFramingParseIdentically) {
  start_server();

  // Shape A: one connection trickles two requests a byte at a time —
  // every read ends mid-frame.
  Client trickle(server_->port());
  ASSERT_TRUE(trickle.connected());
  trickle.send_byte_at_a_time(request_line(1, 42) + request_line(2, 43));
  trickle.shutdown_write();
  const std::vector<std::string> slow = trickle.read_lines(2);

  // Shape B: another coalesces the same two requests into a single send.
  Client bulk(server_->port());
  ASSERT_TRUE(bulk.connected());
  bulk.send_all(request_line(1, 42) + request_line(2, 43));
  bulk.shutdown_write();
  const std::vector<std::string> fast = bulk.read_lines(2);

  ASSERT_EQ(slow.size(), 2u);
  EXPECT_NE(slow[0].find("\"ok\": true"), std::string::npos) << slow[0];
  EXPECT_NE(slow[0].find("\"id\": 1"), std::string::npos);
  EXPECT_NE(slow[1].find("\"id\": 2"), std::string::npos);
  // Same requests, same model: byte-identical responses regardless of how
  // the bytes were segmented.
  EXPECT_EQ(slow, fast);

  // Half-closed peers (FIN sent after the last request) received all
  // responses and then got a clean close.
  EXPECT_TRUE(trickle.read_eof());
}

TEST_F(EventLoopTest, ResponsesArriveInRequestOrder) {
  start_server();
  Client client(server_->port());
  ASSERT_TRUE(client.connected());
  std::string burst;
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) burst += request_line(i, i);
  client.send_all(burst);
  client.shutdown_write();
  const std::vector<std::string> lines = client.read_lines(kRequests);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_NE(lines[i].find("\"id\": " + std::to_string(i) + ","),
              std::string::npos)
        << "out of order at " << i << ": " << lines[i];
  }
}

TEST_F(EventLoopTest, StatsEndpointReportsCounters) {
  start_server();
  Client client(server_->port());
  ASSERT_TRUE(client.connected());
  client.send_all(request_line(1, 7));
  ASSERT_EQ(client.read_lines(1).size(), 1u);
  client.send_all("{\"op\": \"stats\", \"id\": 99}\n");
  const std::vector<std::string> lines = client.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& s = lines[0];
  EXPECT_NE(s.find("\"ok\": true"), std::string::npos) << s;
  EXPECT_NE(s.find("\"id\": 99"), std::string::npos);
  EXPECT_NE(s.find("\"connections_active\": 1"), std::string::npos) << s;
  EXPECT_NE(s.find("\"requests_total\": 2"), std::string::npos) << s;
  EXPECT_NE(s.find("\"responses_total\": 1"), std::string::npos) << s;
  EXPECT_NE(s.find("\"latency_count\": 1"), std::string::npos) << s;
  EXPECT_NE(s.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(s.find("\"registry_generation\""), std::string::npos);
  EXPECT_NE(s.find("\"latency_p99_us\""), std::string::npos);
}

TEST_F(EventLoopTest, MalformedLinesGetErrorsAndAreCounted) {
  start_server();
  Client client(server_->port());
  ASSERT_TRUE(client.connected());
  client.send_all("this is not json\n\n{\"op\": \"nope\"}\n" +
                  request_line(5, 1));
  client.shutdown_write();
  const std::vector<std::string> lines = client.read_lines(3);
  ASSERT_EQ(lines.size(), 3u);  // blank line skipped, no response for it
  EXPECT_NE(lines[0].find("\"ok\": false"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("unknown op"), std::string::npos) << lines[1];
  EXPECT_NE(lines[2].find("\"ok\": true"), std::string::npos) << lines[2];
  EXPECT_GE(stats_.protocol_errors.load(), 2u);
}

TEST_F(EventLoopTest, ConnectionLimitShedsWithOverloadedLine) {
  serve::EventLoopConfig loop_config;
  loop_config.max_conns = 1;
  start_server({}, loop_config);

  Client first(server_->port());
  ASSERT_TRUE(first.connected());
  // The admitted connection must be registered before the second attempt.
  ASSERT_TRUE(stats_eventually(
      [&] { return stats_.connections_accepted.load() >= 1; }));

  Client second(server_->port());
  ASSERT_TRUE(second.connected());
  const std::vector<std::string> lines = second.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("overloaded"), std::string::npos) << lines[0];
  EXPECT_TRUE(second.read_eof());
  EXPECT_GE(stats_.connections_shed.load(), 1u);

  // The admitted connection still serves.
  first.send_all(request_line(1, 1));
  EXPECT_EQ(first.read_lines(1).size(), 1u);
}

TEST_F(EventLoopTest, CachedRepeatsAreByteIdenticalOverTcp) {
  serve::ServeConfig config;
  config.cache_bytes = 1 << 20;
  start_server(config);

  Client client(server_->port());
  ASSERT_TRUE(client.connected());
  client.send_all(request_line(1, 42) + request_line(1, 42) +
                  request_line(1, 42));
  client.shutdown_write();
  const std::vector<std::string> lines = client.read_lines(3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], lines[1]);
  EXPECT_EQ(lines[1], lines[2]);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos) << lines[0];
  // At least one of the repeats was answered from the cache or joined the
  // in-flight owner (scheduling decides the exact split).
  EXPECT_GE(stats_.cache_hits.load() + stats_.cache_inflight_joined.load(),
            1u);
}

// The regression this PR guards: a peer that vanishes mid-conversation
// (RST while responses are queued) must tear its connection down with
// stats accounting — the old thread-per-connection writer could sit in a
// blocking write to the dead socket.
TEST_F(EventLoopTest, PeerResetMidStreamTearsDownAndServerKeepsServing) {
  start_server();

  {
    Client doomed(server_->port());
    ASSERT_TRUE(doomed.connected());
    // Queue a pile of requests, then RST without reading a byte: the
    // responses land on a dead socket.
    std::string burst;
    for (int i = 0; i < 16; ++i) burst += request_line(i, i);
    doomed.send_all(burst);
    doomed.reset();
  }

  // The loop notices (EPOLLERR/EPOLLHUP or a failed write) and accounts
  // the teardown; late worker completions for the dead token are dropped.
  ASSERT_TRUE(stats_eventually([&] {
    return stats_.connections_closed.load() >= 1 &&
           stats_.connections_active.load() == 0;
  })) << "closed=" << stats_.connections_closed.load()
      << " active=" << stats_.connections_active.load();

  // The loop is alive and a new connection serves normally.
  Client survivor(server_->port());
  ASSERT_TRUE(survivor.connected());
  survivor.send_all(request_line(1, 1));
  const std::vector<std::string> lines = survivor.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos) << lines[0];
}

TEST_F(EventLoopTest, IdleConnectionsAreReaped) {
  serve::EventLoopConfig loop_config;
  loop_config.idle_timeout_ms = 300;
  start_server({}, loop_config);

  Client idler(server_->port());
  ASSERT_TRUE(idler.connected());
  // No traffic: the sweep closes it within ~timeout + sweep period.
  EXPECT_TRUE(idler.read_eof());
  EXPECT_TRUE(stats_eventually(
      [&] { return stats_.connections_idle_closed.load() >= 1; }));
}

TEST_F(EventLoopTest, GracefulDrainFlushesInFlightResponses) {
  start_server();
  Client client(server_->port());
  ASSERT_TRUE(client.connected());
  client.send_all(request_line(1, 5));
  // Wait until the request is parsed (drain discards *unparsed* input),
  // then stop while it is still queued or executing: the drain contract
  // says its response is computed, flushed, and the connection closed
  // before run() returns.
  ASSERT_TRUE(
      stats_eventually([&] { return stats_.requests_total.load() >= 1; }));
  server_->request_stop();
  const std::vector<std::string> lines = client.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos) << lines[0];
  EXPECT_TRUE(client.read_eof());
  loop_thread_.join();
  EXPECT_EQ(loop_status_, 0);
  EXPECT_EQ(stats_.connections_active.load(), 0u);
}

}  // namespace

#else  // !__linux__

TEST(EventLoopTest, SkippedOnNonLinux) {
  GTEST_SKIP() << "EventLoopServer requires Linux epoll";
}

#endif  // __linux__
