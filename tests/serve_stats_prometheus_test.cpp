// Prometheus exposition compliance and LatencyHistogram bound/percentile
// contracts: exact HELP/TYPE framing, label escaping, cumulative bucket
// monotonicity with honest le bounds, the "# EOF" in-band terminator, and
// the per-endpoint breakdown in both wire formats. Thread-free on
// purpose — format compliance needs no concurrency.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "prometheus_text.h"
#include "serve/batch_queue.h"
#include "serve/stats.h"

namespace {

using namespace sqvae;
using serve::LatencyHistogram;
using serve::ServerStats;

// ---- LatencyHistogram bounds and percentiles ------------------------------

TEST(LatencyHistogramTest, BucketUpperBoundsAreInclusivePowerOfTwoEdges) {
  // Bucket 0 holds {0, 1}us; bucket b >= 1 holds [2^b, 2^(b+1)) us, so
  // the inclusive integer upper bound is 2^(b+1) - 1.
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(0), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(1), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(3), 15u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(10), 2047u);
  // A sample exactly at a bound lands in the bucket whose bound it is.
  LatencyHistogram h;
  h.record_us(15);
  EXPECT_EQ(h.bucket_count(3), 1u);
  h.record_us(16);
  EXPECT_EQ(h.bucket_count(4), 1u);
}

TEST(LatencyHistogramTest, RecordPlacesSamplesInLog2Buckets) {
  LatencyHistogram h;
  h.record_us(0);
  h.record_us(1);
  EXPECT_EQ(h.bucket_count(0), 2u);
  h.record_us(2);
  h.record_us(3);
  EXPECT_EQ(h.bucket_count(1), 2u);
  h.record_us(1000);  // [512, 1024) -> bucket 9
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum_us(), 0u + 1 + 2 + 3 + 1000);
}

TEST(LatencyHistogramTest, PercentileInterpolatesInsideTrueBounds) {
  LatencyHistogram h;
  // 1000 samples of 100us all land in bucket 6 = [64, 128). Every
  // percentile estimate must stay inside that bucket — the old
  // implementation interpolated in [32, 64) and reported a 2x
  // underestimate for mid-bucket samples.
  for (int i = 0; i < 1000; ++i) h.record_us(100);
  for (double q : {0.01, 0.50, 0.99}) {
    const double p = h.percentile_us(q);
    EXPECT_GE(p, 64.0) << "q=" << q;
    EXPECT_LE(p, 128.0) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, PercentileSpansDistinctBuckets) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record_us(10);    // bucket 3: [8, 16)
  for (int i = 0; i < 10; ++i) h.record_us(5000);  // bucket 12: [4096, 8192)
  const double p50 = h.percentile_us(0.50);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 16.0);
  const double p99 = h.percentile_us(0.99);
  EXPECT_GE(p99, 4096.0);
  EXPECT_LE(p99, 8192.0);
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile_us(0.50), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_us(), 0u);
}

// ---- label escaping -------------------------------------------------------

TEST(PrometheusEscapeTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(serve::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(serve::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(serve::prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(serve::prometheus_escape_label("a\nb"), "a\\nb");
}

// ---- the validator itself (sanity: it must reject real violations) --------

TEST(ValidatorTest, AcceptsMinimalFamily) {
  const std::string body =
      "# HELP x_total Things.\n# TYPE x_total counter\nx_total 3\n";
  EXPECT_EQ(prom_test::validate_prometheus_text(body), "");
}

TEST(ValidatorTest, RejectsSampleWithoutType) {
  EXPECT_NE(prom_test::validate_prometheus_text("x_total 3\n"), "");
}

TEST(ValidatorTest, RejectsNonMonotonicHistogram) {
  const std::string body =
      "# HELP h Hist.\n# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
  EXPECT_NE(prom_test::validate_prometheus_text(body), "");
}

TEST(ValidatorTest, RejectsHistogramCountMismatch) {
  const std::string body =
      "# HELP h Hist.\n# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
  EXPECT_NE(prom_test::validate_prometheus_text(body), "");
}

TEST(ValidatorTest, RejectsBadLabelEscape) {
  const std::string body =
      "# HELP x_total T.\n# TYPE x_total counter\n"
      "x_total{a=\"b\\tc\"} 1\n";
  EXPECT_NE(prom_test::validate_prometheus_text(body), "");
}

// ---- the real renderer against the validator ------------------------------

/// A ServerStats populated across every counter class so the render
/// exercises non-zero paths.
void populate(ServerStats* stats) {
  stats->connections_accepted = 7;
  stats->connections_active = 2;
  stats->connections_closed = 5;
  stats->requests_total = 40;
  stats->responses_total = 39;
  stats->protocol_errors = 1;
  stats->cache_hits = 10;
  stats->cache_misses = 30;
  stats->cache_bytes = 4096;
  stats->cache_entries = 12;
  for (int i = 0; i < 20; ++i) stats->latency.record_us(100 + i);
  const int encode = static_cast<int>(serve::Endpoint::kEncode);
  const int recon = static_cast<int>(serve::Endpoint::kReconstruct);
  stats->endpoint[encode].requests = 25;
  stats->endpoint[encode].errors = 1;
  for (int i = 0; i < 25; ++i) stats->endpoint[encode].latency.record_us(80);
  stats->endpoint[recon].requests = 15;
  for (int i = 0; i < 15; ++i) {
    stats->endpoint[recon].latency.record_us(9000);
  }
}

TEST(RenderPrometheusTest, PassesTextFormatValidator) {
  ServerStats stats;
  populate(&stats);
  const std::string body =
      serve::render_stats_prometheus(stats, /*queue_depth=*/3,
                                     /*registry_generation=*/2, /*shard=*/1);
  EXPECT_EQ(prom_test::validate_prometheus_text(body), "") << body;
}

TEST(RenderPrometheusTest, ExactFramingAndShardLabels) {
  ServerStats stats;
  populate(&stats);
  const std::string body = serve::render_stats_prometheus(stats, 3, 2, 1);

  // HELP precedes TYPE precedes the sample, verbatim.
  const std::string help = "# HELP sqvae_requests_total ";
  const std::string type = "# TYPE sqvae_requests_total counter\n";
  const std::string sample = "sqvae_requests_total{shard=\"1\"} 40\n";
  const std::size_t help_at = body.find(help);
  const std::size_t type_at = body.find(type);
  const std::size_t sample_at = body.find(sample);
  ASSERT_NE(help_at, std::string::npos);
  ASSERT_NE(type_at, std::string::npos);
  ASSERT_NE(sample_at, std::string::npos) << body;
  EXPECT_LT(help_at, type_at);
  EXPECT_LT(type_at, sample_at);

  // Gauges are typed as gauges.
  EXPECT_NE(body.find("# TYPE sqvae_connections_active gauge\n"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE sqvae_model_generation gauge\n"),
            std::string::npos);
  EXPECT_NE(body.find("sqvae_model_generation{shard=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(body.find("sqvae_queue_depth{shard=\"1\"} 3\n"),
            std::string::npos);

  // Per-endpoint counters carry both labels.
  EXPECT_NE(
      body.find(
          "sqvae_endpoint_requests_total{shard=\"1\",endpoint=\"encode\"} 25"),
      std::string::npos);
  EXPECT_NE(
      body.find(
          "sqvae_endpoint_errors_total{shard=\"1\",endpoint=\"encode\"} 1"),
      std::string::npos);

  // The in-band terminator is the final line.
  ASSERT_GE(body.size(), 5u);
  EXPECT_EQ(body.substr(body.size() - 5), "# EOF");
}

TEST(RenderPrometheusTest, HistogramUsesHonestBoundsInSeconds) {
  ServerStats stats;
  const int encode = static_cast<int>(serve::Endpoint::kEncode);
  // 80us lands in bucket 6 ([64, 128)us, inclusive bound 127us). Every
  // le bound at or above 127us must count it; every bound below must not.
  stats.endpoint[encode].latency.record_us(80);
  const std::string body = serve::render_stats_prometheus(stats, 0, 1, 0);

  // Mirror the renderer's %.17g formatting for the expected bounds.
  const auto g17 = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  const std::string labels = "{shard=\"0\",endpoint=\"encode\",le=\"";
  // Bucket 5's inclusive bound: 63us — count still 0.
  EXPECT_NE(body.find("sqvae_request_latency_seconds_bucket" + labels +
                      g17(63 / 1e6) + "\"} 0\n"),
            std::string::npos)
      << body;
  // Bucket 6's inclusive bound: 127us — count 1 (80us <= 127us).
  EXPECT_NE(body.find("sqvae_request_latency_seconds_bucket" + labels +
                      g17(127 / 1e6) + "\"} 1\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("sqvae_request_latency_seconds_bucket" + labels +
                      "+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(body.find("sqvae_request_latency_seconds_sum{shard=\"0\","
                      "endpoint=\"encode\"} " +
                      g17(80 / 1e6) + "\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("sqvae_request_latency_seconds_count{shard=\"0\","
                      "endpoint=\"encode\"} 1\n"),
            std::string::npos);
}

// ---- JSON variant keeps its contract --------------------------------------

TEST(RenderJsonTest, KeepsGlobalKeysAndAddsEndpointBreakdown) {
  ServerStats stats;
  populate(&stats);
  const std::string line =
      serve::render_stats_response(stats, /*queue_depth=*/3,
                                   /*registry_generation=*/2,
                                   /*has_id=*/true, /*id=*/9);
  // Single line (the line protocol's framing unit).
  EXPECT_EQ(line.find('\n'), std::string::npos);
  // Pre-existing keys survive.
  for (const char* key :
       {"\"id\": 9", "\"requests_total\": 40", "\"responses_total\": 39",
        "\"protocol_errors\": 1", "\"cache_hits\": 10", "\"queue_depth\": 3",
        "\"registry_generation\": 2", "\"latency_count\": 20",
        "\"latency_p50_us\":", "\"latency_p99_us\":"}) {
    EXPECT_NE(line.find(key), std::string::npos) << key << "\n" << line;
  }
  // New per-endpoint keys, one set per endpoint.
  for (const char* key :
       {"\"encode_requests\": 25", "\"encode_errors\": 1",
        "\"encode_p50_us\":", "\"encode_p99_us\":",
        "\"reconstruct_requests\": 15", "\"decode_requests\": 0",
        "\"latent_sample_requests\": 0"}) {
    EXPECT_NE(line.find(key), std::string::npos) << key << "\n" << line;
  }
}

TEST(RenderJsonTest, EndpointPercentilesStayInsideTrueBuckets) {
  ServerStats stats;
  const int recon = static_cast<int>(serve::Endpoint::kReconstruct);
  for (int i = 0; i < 100; ++i) {
    stats.endpoint[recon].latency.record_us(9000);  // bucket [8192, 16384)
  }
  const std::string line =
      serve::render_stats_response(stats, 0, 1, false, 0);
  const std::size_t at = line.find("\"reconstruct_p50_us\": ");
  ASSERT_NE(at, std::string::npos);
  const double p50 = std::stod(line.substr(at + 22));
  EXPECT_GE(p50, 8192.0);
  EXPECT_LE(p50, 16384.0);
}

}  // namespace
