#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/optim.h"

namespace sqvae::nn {
namespace {

TEST(Linear, ShapesAndParameterCount) {
  Rng rng(1);
  Linear layer(8, 3, rng);
  EXPECT_EQ(layer.in_features(), 8u);
  EXPECT_EQ(layer.out_features(), 3u);
  EXPECT_EQ(layer.num_parameters(), 8u * 3u + 3u);

  Tape tape;
  Var x = tape.constant(Matrix(5, 8, 0.1));
  Var y = layer.forward(tape, x);
  EXPECT_EQ(tape.value(y).rows(), 5u);
  EXPECT_EQ(tape.value(y).cols(), 3u);
}

TEST(Linear, XavierInitIsBounded) {
  Rng rng(2);
  Linear layer(100, 50, rng);
  const double bound = std::sqrt(6.0 / 150.0);
  for (std::size_t i = 0; i < layer.weight.value.size(); ++i) {
    EXPECT_LE(std::abs(layer.weight.value[i]), bound);
  }
  for (std::size_t i = 0; i < layer.bias.value.size(); ++i) {
    EXPECT_EQ(layer.bias.value[i], 0.0);
  }
}

TEST(Mlp, ParameterCountMatchesPaperClassicalEncoder) {
  // Paper Section III-B: encoder 64 -> 32 -> 16 -> 6 with ReLU.
  Rng rng(3);
  Mlp encoder({64, 32, 16, 6}, Activation::kReLU, rng);
  EXPECT_EQ(encoder.num_parameters(),
            (64u * 32 + 32) + (32u * 16 + 16) + (16u * 6 + 6));
}

TEST(Mlp, ForwardShape) {
  Rng rng(4);
  Mlp mlp({10, 7, 4}, Activation::kTanh, rng);
  Tape tape;
  Var y = mlp.forward(tape, tape.constant(Matrix(3, 10, 0.5)));
  EXPECT_EQ(tape.value(y).rows(), 3u);
  EXPECT_EQ(tape.value(y).cols(), 4u);
}

TEST(Adam, MinimizesQuadratic) {
  // f(w) = mean((w - target)^2) via mse_loss.
  Parameter w(Matrix(1, 4, 0.0));
  Matrix target{{1.0, -2.0, 0.5, 3.0}};
  Adam opt({ParamGroup{{&w}, 0.05}});
  for (int step = 0; step < 500; ++step) {
    Tape tape;
    Var loss = tape.mse_loss(tape.leaf(&w), target);
    opt.zero_grad();
    tape.backward(loss);
    opt.step();
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.value[i], target[i], 1e-3) << i;
  }
}

TEST(Adam, FirstStepHasUnitScaleRegardlessOfGradientMagnitude) {
  // Adam's bias-corrected first step is lr * sign(grad) (for eps -> 0).
  Parameter big(Matrix(1, 1, 0.0));
  Parameter small(Matrix(1, 1, 0.0));
  Adam opt({ParamGroup{{&big, &small}, 0.1}});
  big.grad(0, 0) = 1000.0;
  small.grad(0, 0) = 1e-4;
  opt.step();
  EXPECT_NEAR(big.value(0, 0), -0.1, 1e-6);
  EXPECT_NEAR(small.value(0, 0), -0.1, 1e-3);
}

TEST(Adam, PerGroupLearningRatesDiffer) {
  Parameter fast(Matrix(1, 1, 0.0));
  Parameter slow(Matrix(1, 1, 0.0));
  Adam opt({ParamGroup{{&fast}, 0.1}, ParamGroup{{&slow}, 0.001}});
  EXPECT_EQ(opt.num_groups(), 2u);
  fast.grad(0, 0) = 1.0;
  slow.grad(0, 0) = 1.0;
  opt.step();
  // First Adam step moves by ~lr in the gradient direction.
  EXPECT_NEAR(fast.value(0, 0), -0.1, 1e-6);
  EXPECT_NEAR(slow.value(0, 0), -0.001, 1e-8);
}

TEST(Adam, SetLrTakesEffect) {
  Parameter w(Matrix(1, 1, 0.0));
  Adam opt({ParamGroup{{&w}, 0.1}});
  opt.set_lr(0, 0.5);
  EXPECT_EQ(opt.lr(0), 0.5);
  w.grad(0, 0) = 1.0;
  opt.step();
  EXPECT_NEAR(w.value(0, 0), -0.5, 1e-6);
}

TEST(Adam, CountsParameters) {
  Parameter a(Matrix(2, 3));
  Parameter b(Matrix(1, 5));
  Adam opt({ParamGroup{{&a}, 0.1}, ParamGroup{{&b}, 0.1}});
  EXPECT_EQ(opt.num_parameters(), 11u);
}

TEST(Sgd, StepIsLrTimesGrad) {
  Parameter w(Matrix(1, 2, 1.0));
  Sgd opt({ParamGroup{{&w}, 0.5}});
  w.grad(0, 0) = 2.0;
  w.grad(0, 1) = -4.0;
  opt.step();
  EXPECT_NEAR(w.value(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(w.value(0, 1), 3.0, 1e-12);
}

TEST(Training, MlpLearnsLinearMap) {
  // Fit y = x * W_true with a 1-hidden-layer MLP; loss must drop sharply.
  Rng rng(7);
  Mlp mlp({3, 8, 2}, Activation::kTanh, rng);
  Matrix w_true{{1.0, -1.0}, {0.5, 2.0}, {-1.5, 0.3}};
  Matrix x(32, 3);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.uniform(-1, 1);
  Matrix y = x.matmul(w_true);

  Adam opt({ParamGroup{mlp.parameters(), 0.01}});
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 400; ++step) {
    Tape tape;
    Var loss = tape.mse_loss(mlp.forward(tape, tape.constant(x)), y);
    if (step == 0) first_loss = tape.value(loss)(0, 0);
    last_loss = tape.value(loss)(0, 0);
    opt.zero_grad();
    tape.backward(loss);
    opt.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.05);
}

}  // namespace
}  // namespace sqvae::nn
