// Composite gradient checks: finite-difference validation of d(loss)/d(w)
// through *entire models* — classical VAE (MLP + reparameterisation + KL)
// and the hybrid quantum autoencoder (amplitude embedding -> circuit ->
// measurements -> FC stack). These catch wiring mistakes that per-op and
// per-layer tests cannot (wrong slot offsets, missed normalisation
// Jacobians, KL weighting errors).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "models/baseline_quantum.h"
#include "models/classical.h"
#include "models/scalable_quantum.h"

namespace sqvae::models {
namespace {

/// Deterministic loss evaluation: reseeds the reparameterisation RNG so
/// that the sampled noise is identical across finite-difference probes.
double eval_loss(Autoencoder& model, const Matrix& batch,
                 std::uint64_t noise_seed) {
  ad::Tape tape;
  Rng rng(noise_seed);
  LossStats stats;
  model.build_loss(tape, batch, rng, &stats);
  return stats.total;
}

/// FD-checks a sample of elements from every parameter of the model.
void check_model_gradients(Autoencoder& model, const Matrix& batch,
                           double tol) {
  constexpr std::uint64_t kNoiseSeed = 12345;
  std::vector<ad::Parameter*> params = model.quantum_parameters();
  for (ad::Parameter* p : model.classical_parameters()) params.push_back(p);

  // Analytic gradients.
  for (ad::Parameter* p : params) p->zero_grad();
  {
    ad::Tape tape;
    Rng rng(kNoiseSeed);
    ad::Var loss = model.build_loss(tape, batch, rng, nullptr);
    tape.backward(loss);
  }

  const double eps = 1e-5;
  Rng pick(7);
  for (ad::Parameter* p : params) {
    // Check up to 5 random elements per parameter (full sweeps are done at
    // the layer level; here breadth across parameters matters more).
    const std::size_t checks = std::min<std::size_t>(5, p->value.size());
    for (std::size_t k = 0; k < checks; ++k) {
      const std::size_t i = pick.uniform_index(p->value.size());
      const double saved = p->value[i];
      p->value[i] = saved + eps;
      const double plus = eval_loss(model, batch, kNoiseSeed);
      p->value[i] = saved - eps;
      const double minus = eval_loss(model, batch, kNoiseSeed);
      p->value[i] = saved;
      const double fd = (plus - minus) / (2 * eps);
      EXPECT_NEAR(p->grad[i], fd, tol)
          << "param element " << i << " (rows " << p->value.rows() << " cols "
          << p->value.cols() << ")";
    }
  }
}

TEST(CompositeGradients, ClassicalVaeFullModel) {
  Rng rng(1);
  ClassicalVae model(classical_config_64(4), rng);
  Matrix batch(3, 64);
  Rng data_rng(2);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = data_rng.uniform(0, 1);
  }
  check_model_gradients(model, batch, 2e-4);
}

TEST(CompositeGradients, FullyQuantumVae) {
  Rng rng(3);
  auto model = make_fbq_vae(16, 2, rng);
  Matrix batch(2, 16);
  Rng data_rng(4);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = data_rng.uniform(0.1, 1.0);
  }
  check_model_gradients(*model, batch, 2e-4);
}

TEST(CompositeGradients, HybridQuantumAe) {
  Rng rng(5);
  auto model = make_hbq_ae(16, 2, rng);
  Matrix batch(2, 16);
  Rng data_rng(6);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = data_rng.uniform(0.1, 3.0);
  }
  check_model_gradients(*model, batch, 2e-4);
}

TEST(CompositeGradients, ScalableQuantumVaePatched) {
  Rng rng(7);
  ScalableQuantumConfig c;
  c.input_dim = 32;  // 2 patches x 4 qubits
  c.patches = 2;
  c.entangling_layers = 2;
  auto model = make_sq_vae(c, rng);
  Matrix batch(2, 32);
  Rng data_rng(8);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = data_rng.uniform(0.1, 3.0);
  }
  check_model_gradients(*model, batch, 2e-4);
}

}  // namespace
}  // namespace sqvae::models
