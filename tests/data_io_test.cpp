#include "data/io.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <fstream>

#include "chem/smiles.h"
#include "common/rng.h"
#include "data/molecule_dataset.h"

namespace sqvae::data {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/sqvae_io_test_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }
  void write(const std::string& content) {
    std::ofstream f(path_);
    f << content;
  }

 private:
  std::string path_;
};

TEST(CsvIo, RoundTripIsExact) {
  Rng rng(1);
  Dataset ds{Matrix(7, 5)};
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    ds.samples[i] = rng.normal() * 1e3;  // exercise precision
  }
  TempFile file("roundtrip.csv");
  ASSERT_TRUE(save_csv(ds, file.path()));
  const auto loaded = load_csv(file.path());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 7u);
  ASSERT_EQ(loaded->num_features(), 5u);
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    EXPECT_EQ(loaded->samples[i], ds.samples[i]) << i;
  }
}

TEST(CsvIo, LoadsHandWrittenFile) {
  TempFile file("hand.csv");
  file.write("1,2,3\n4.5,-6,7e2\n\n0,0,0\n");
  const auto loaded = load_csv(file.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 3u);  // blank line skipped
  EXPECT_EQ(loaded->samples(1, 2), 700.0);
}

TEST(CsvIo, ReportsRaggedRows) {
  TempFile file("ragged.csv");
  file.write("1,2,3\n4,5\n");
  CsvError error;
  EXPECT_FALSE(load_csv(file.path(), &error).has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_NE(error.message.find("expected 3"), std::string::npos);
}

TEST(CsvIo, ReportsBadNumbers) {
  TempFile file("bad.csv");
  file.write("1,2\n3,abc\n");
  CsvError error;
  EXPECT_FALSE(load_csv(file.path(), &error).has_value());
  EXPECT_EQ(error.line, 2u);

  TempFile trailing("trailing.csv");
  trailing.write("1,2x\n");
  EXPECT_FALSE(load_csv(trailing.path(), &error).has_value());
}

TEST(CsvIo, OutOfRangeIsDistinctFromNotANumber) {
  // "1e999" is syntactically a number that doubles cannot hold; the loader
  // must say so rather than claim it is "not a number".
  TempFile file("range.csv");
  file.write("1,1e999\n");
  CsvError error;
  EXPECT_FALSE(load_csv(file.path(), &error).has_value());
  EXPECT_EQ(error.line, 1u);
  EXPECT_NE(error.message.find("out of range"), std::string::npos)
      << error.message;
  EXPECT_EQ(error.message.find("not a number"), std::string::npos)
      << error.message;
}

TEST(CsvIo, ParsingIsLocaleIndependent) {
  // Under a comma-decimal locale, std::stod would read "1.5" as 1 (comma
  // is the separator) or misparse entirely; std::from_chars must not.
  // Skipped silently when the locale is not installed in the image.
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = previous ? previous : "C";
  const bool have_locale =
      std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr ||
      std::setlocale(LC_NUMERIC, "fr_FR.UTF-8") != nullptr;
  TempFile file("locale.csv");
  file.write("1.5,-2.25e1\n");
  const auto loaded = load_csv(file.path());
  std::setlocale(LC_NUMERIC, saved.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->samples(0, 0), 1.5);
  EXPECT_EQ(loaded->samples(0, 1), -22.5);
  (void)have_locale;  // parse must be exact with or without the locale
}

TEST(CsvIo, MissingAndEmptyFiles) {
  CsvError error;
  EXPECT_FALSE(load_csv("/nonexistent/nope.csv", &error).has_value());
  EXPECT_EQ(error.line, 0u);

  TempFile empty("empty.csv");
  empty.write("");
  EXPECT_FALSE(load_csv(empty.path(), &error).has_value());
}

TEST(SmilesIo, RoundTripMolecules) {
  Rng rng(2);
  const auto ds = make_qm9_like(12, 8, rng);
  TempFile file("mols.smi");
  const SaveSmilesResult result = save_smiles(ds.molecules, file.path());
  EXPECT_TRUE(result.io_ok);
  EXPECT_EQ(result.written, 12u);
  EXPECT_TRUE(result.skipped.empty());
  const auto loaded = load_smiles(file.path());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 12u);
  for (std::size_t i = 0; i < loaded->size(); ++i) {
    // Canonical SMILES equality = graph identity within our alphabet.
    EXPECT_EQ(chem::to_smiles((*loaded)[i]), chem::to_smiles(ds.molecules[i]))
        << i;
  }
}

TEST(SmilesIo, ReportsUnserializableMolecules) {
  // A two-fragment molecule cannot be written by to_smiles; the save must
  // succeed for the rest AND say exactly which index was dropped.
  Rng rng(3);
  auto molecules = make_qm9_like(4, 8, rng).molecules;
  chem::Molecule fragments;
  fragments.add_atom(chem::Element::kC);
  fragments.add_atom(chem::Element::kO);  // no bond: two components
  molecules.insert(molecules.begin() + 2, fragments);

  TempFile file("lossy.smi");
  const SaveSmilesResult result = save_smiles(molecules, file.path());
  EXPECT_TRUE(result.io_ok);
  EXPECT_EQ(result.written, 4u);
  ASSERT_EQ(result.skipped.size(), 1u);
  EXPECT_EQ(result.skipped[0], 2u);

  const auto loaded = load_smiles(file.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 4u);
}

TEST(SmilesIo, SkipsCommentsAndBlankLines) {
  TempFile file("comments.smi");
  file.write("# header comment\nCCO\n\nc1ccccc1\n");
  const auto loaded = load_smiles(file.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST(SmilesIo, ReportsUnparseableLine) {
  TempFile file("badsmiles.smi");
  file.write("CCO\nnot_a_smiles!!\n");
  CsvError error;
  EXPECT_FALSE(load_smiles(file.path(), &error).has_value());
  EXPECT_EQ(error.line, 2u);
}

}  // namespace
}  // namespace sqvae::data
