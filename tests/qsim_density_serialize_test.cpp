#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "qsim/density_matrix.h"
#include "qsim/embedding.h"
#include "qsim/serialize.h"

namespace sqvae::qsim {
namespace {

Circuit random_layered_circuit(int qubits, int layers, std::uint64_t seed,
                               std::vector<double>* params) {
  Circuit c(qubits);
  c.strongly_entangling_layers(layers, 0);
  Rng rng(seed);
  params->resize(static_cast<std::size_t>(c.num_param_slots()));
  for (double& p : *params) p = rng.uniform(-3, 3);
  return c;
}

TEST(DensityMatrix, PureEvolutionMatchesStatevector) {
  std::vector<double> params;
  const Circuit c = random_layered_circuit(3, 2, 42, &params);

  const Statevector psi = run_from_zero(c, params);
  DensityMatrix rho(3);
  for (const GateOp& op : c.ops()) rho.apply_op(op, params);

  const DensityMatrix expected = DensityMatrix::from_pure(psi);
  for (std::size_t r = 0; r < rho.dim(); ++r) {
    for (std::size_t col = 0; col < rho.dim(); ++col) {
      EXPECT_NEAR(std::abs(rho.at(r, col) - expected.at(r, col)), 0.0, 1e-12);
    }
  }
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
  for (int q = 0; q < 3; ++q) {
    EXPECT_NEAR(rho.expectation_z(q), psi.expectation_z(q), 1e-12);
  }
}

TEST(DensityMatrix, ControlledGatesMatchStatevector) {
  Circuit c(3);
  c.h(0).cry(0, 1, Param::value(0.8)).crz(1, 2, Param::value(-1.2));
  c.swap(0, 2).cz(0, 1);
  const Statevector psi = run_from_zero(c, {});
  DensityMatrix rho(3);
  for (const GateOp& op : c.ops()) rho.apply_op(op, {});
  const auto p_sv = psi.probabilities();
  const auto p_dm = rho.probabilities();
  for (std::size_t i = 0; i < p_sv.size(); ++i) {
    EXPECT_NEAR(p_dm[i], p_sv[i], 1e-12) << i;
  }
}

TEST(DensityMatrix, DepolarizingPreservesTraceLowersPurity) {
  std::vector<double> params;
  const Circuit c = random_layered_circuit(3, 2, 7, &params);
  DensityMatrix rho(3);
  for (const GateOp& op : c.ops()) rho.apply_op(op, params);
  const double purity_before = rho.purity();
  rho.apply_depolarizing(1, 0.2);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  EXPECT_LT(rho.purity(), purity_before);
}

TEST(DensityMatrix, FullDepolarizationApproachesMaximallyMixedQubit) {
  // Repeated strong channels on one qubit of |+>: <Z> and <X>-coherence
  // vanish on that qubit.
  DensityMatrix rho(1);
  rho.apply_single(gate_matrix(GateKind::kH, 0.0), 0);
  for (int i = 0; i < 50; ++i) rho.apply_depolarizing(0, 0.5);
  EXPECT_NEAR(rho.expectation_z(0), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(rho.at(0, 1)), 0.0, 1e-9);
  EXPECT_NEAR(rho.purity(), 0.5, 1e-9);
}

TEST(DensityMatrix, AnalyticDepolarizingDamping) {
  // k channels of strength p on Z eigenstate: <Z> = (1 - 4p/3)^k, exactly.
  DensityMatrix rho(1);
  const double p = 0.1;
  const int k = 6;
  for (int i = 0; i < k; ++i) rho.apply_depolarizing(0, p);
  EXPECT_NEAR(rho.expectation_z(0), std::pow(1.0 - 4.0 * p / 3.0, k), 1e-12);
}

TEST(DensityMatrix, TrajectoryAverageConvergesToExactChannel) {
  // The load-bearing cross-validation: stochastic Pauli trajectories
  // (noise.h) must converge to the exact density-matrix channel.
  std::vector<double> params;
  const Circuit c = random_layered_circuit(3, 2, 99, &params);
  const NoiseModel noise{0.03};

  const DensityMatrix exact = run_density(c, params, noise);
  Rng rng(123);
  const auto sampled = noisy_expectations_z(c, params, noise, 20000, rng);
  for (int q = 0; q < 3; ++q) {
    EXPECT_NEAR(sampled[static_cast<std::size_t>(q)], exact.expectation_z(q),
                0.02)
        << q;
  }
}

TEST(Serialize, RoundTripPreservesCircuit) {
  Circuit c(4);
  c.h(0).ry(1, Param::slot(0)).rz(2, Param::value(0.5));
  c.cnot(0, 3).crz(1, 2, Param::slot(5)).swap(0, 2);
  c.x(3).s(1).t(0).cry(3, 0, Param::value(-1.25));

  const std::string text = circuit_to_text(c);
  const auto parsed = circuit_from_text(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_qubits(), 4);
  EXPECT_EQ(parsed->num_ops(), c.num_ops());
  EXPECT_EQ(parsed->num_param_slots(), c.num_param_slots());
  // Behavioural equality: identical statevectors for random parameters.
  std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()));
  Rng rng(3);
  for (double& p : params) p = rng.uniform(-3, 3);
  const Statevector a = run_from_zero(c, params);
  const Statevector b = run_from_zero(*parsed, params);
  for (std::size_t i = 0; i < a.dim(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-14);
  }
  // Text is stable under a second round trip.
  EXPECT_EQ(circuit_to_text(*parsed), text);
}

TEST(Serialize, EntanglingLayersRoundTrip) {
  Circuit c(5);
  c.angle_embedding(0);
  c.strongly_entangling_layers(3, 5);
  const auto parsed = circuit_from_text(circuit_to_text(c));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_param_slots(), c.num_param_slots());
  EXPECT_EQ(parsed->num_ops(), c.num_ops());
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_FALSE(circuit_from_text("").has_value());
  EXPECT_FALSE(circuit_from_text("wires 3\n").has_value());
  EXPECT_FALSE(circuit_from_text("qubits 0\n").has_value());
  EXPECT_FALSE(circuit_from_text("qubits 2\nFOO t=0\n").has_value());
  EXPECT_FALSE(circuit_from_text("qubits 2\nRY t=5 theta=0.1\n").has_value());
  // no theta
  EXPECT_FALSE(circuit_from_text("qubits 2\nRY t=0\n").has_value());
  EXPECT_FALSE(circuit_from_text("qubits 2\nH t=0 theta=1\n").has_value());
  EXPECT_FALSE(circuit_from_text("qubits 2\nCNOT t=0\n").has_value());
  EXPECT_FALSE(
      circuit_from_text("qubits 2\nCNOT c=0 t=0\n").has_value());  // c == t
  EXPECT_FALSE(
      circuit_from_text("qubits 2\nRY t=0 theta=p[-1]\n").has_value());
  EXPECT_FALSE(circuit_from_text("qubits 2\nRY t=0 theta=abc\n").has_value());
}

}  // namespace
}  // namespace sqvae::qsim
