#include "models/quantum_layer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/tape.h"
#include "common/rng.h"

namespace sqvae::models {
namespace {

using ad::Parameter;
using ad::Tape;
using ad::Var;

QuantumLayerConfig angle_config(int qubits, int layers) {
  QuantumLayerConfig c;
  c.num_qubits = qubits;
  c.entangling_layers = layers;
  c.input = QuantumLayerConfig::InputMode::kAngle;
  c.output = QuantumLayerConfig::OutputMode::kExpectationZ;
  c.input_dim = qubits;
  return c;
}

QuantumLayerConfig amplitude_config(int qubits, int layers, int input_dim,
                                    bool probs = false) {
  QuantumLayerConfig c;
  c.num_qubits = qubits;
  c.entangling_layers = layers;
  c.input = QuantumLayerConfig::InputMode::kAmplitude;
  c.output = probs ? QuantumLayerConfig::OutputMode::kProbabilities
                   : QuantumLayerConfig::OutputMode::kExpectationZ;
  c.input_dim = input_dim;
  return c;
}

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng, double lo,
                     double hi) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = rng.uniform(lo, hi);
  return m;
}

TEST(QuantumLayer, OutputShapes) {
  Rng rng(1);
  QuantumLayer expectation_layer(angle_config(4, 2), rng);
  EXPECT_EQ(expectation_layer.output_dim(), 4);
  EXPECT_EQ(expectation_layer.num_parameters(), 4u * 2u * 3u);

  QuantumLayer prob_layer(amplitude_config(3, 1, 8, /*probs=*/true), rng);
  EXPECT_EQ(prob_layer.output_dim(), 8);

  Tape tape;
  Var x = tape.constant(random_matrix(5, 4, rng, -1, 1));
  Var y = expectation_layer.forward(tape, x);
  EXPECT_EQ(tape.value(y).rows(), 5u);
  EXPECT_EQ(tape.value(y).cols(), 4u);
}

TEST(QuantumLayer, ExpectationsInPhysicalRange) {
  Rng rng(2);
  QuantumLayer layer(angle_config(3, 3), rng);
  const Matrix x = random_matrix(8, 3, rng, -3, 3);
  const Matrix y = layer.forward_values(x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_GE(y[i], -1.0);
    EXPECT_LE(y[i], 1.0);
  }
}

TEST(QuantumLayer, ProbabilitiesSumToOne) {
  Rng rng(3);
  QuantumLayer layer(amplitude_config(4, 2, 16, /*probs=*/true), rng);
  const Matrix x = random_matrix(6, 16, rng, 0, 5);
  const Matrix y = layer.forward_values(x);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < y.cols(); ++c) sum += y(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(QuantumLayer, RowsAreIndependent) {
  // A batch forward must equal per-row forwards (no cross-sample state).
  Rng rng(4);
  QuantumLayer layer(angle_config(3, 2), rng);
  const Matrix batch = random_matrix(4, 3, rng, -2, 2);
  const Matrix batched = layer.forward_values(batch);
  for (std::size_t r = 0; r < 4; ++r) {
    Matrix single(1, 3);
    for (std::size_t c = 0; c < 3; ++c) single(0, c) = batch(r, c);
    const Matrix one = layer.forward_values(single);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(one(0, c), batched(r, c), 1e-14);
    }
  }
}

/// FD check of d(loss)/d(p) for every element of a parameter through a
/// quantum layer graph.
void check_fd(Parameter& p, const std::function<double()>& eval,
              const Matrix& analytic, double tol = 2e-5) {
  const double eps = 1e-5;
  for (std::size_t i = 0; i < p.value.size(); ++i) {
    const double saved = p.value[i];
    p.value[i] = saved + eps;
    const double plus = eval();
    p.value[i] = saved - eps;
    const double minus = eval();
    p.value[i] = saved;
    EXPECT_NEAR(analytic[i], (plus - minus) / (2 * eps), tol)
        << "element " << i;
  }
}

class QuantumLayerGradients : public ::testing::TestWithParam<int> {};

TEST_P(QuantumLayerGradients, AngleModeWeightsAndInputsMatchFd) {
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  const int qubits = GetParam();
  QuantumLayer layer(angle_config(qubits, 2), rng);
  Parameter input(random_matrix(2, static_cast<std::size_t>(qubits), rng,
                                -1.5, 1.5));
  const Matrix target(2, static_cast<std::size_t>(qubits), 0.3);

  auto build = [&](ad::Tape& t) {
    return t.mse_loss(layer.forward(t, t.leaf(&input)), target);
  };
  auto eval = [&]() {
    Tape t;
    return t.value(build(t))(0, 0);
  };

  Tape tape;
  Var loss = build(tape);
  input.zero_grad();
  layer.weights().zero_grad();
  tape.backward(loss);

  check_fd(input, eval, input.grad);
  check_fd(layer.weights(), eval, layer.weights().grad);
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantumLayerGradients,
                         ::testing::Values(2, 3, 4));

TEST(QuantumLayerGradients, AmplitudeModeExpectationMatchesFd) {
  Rng rng(200);
  QuantumLayer layer(amplitude_config(3, 2, 8), rng);
  Parameter input(random_matrix(2, 8, rng, 0.2, 2.0));
  const Matrix target(2, 3, -0.1);

  auto build = [&](Tape& t) {
    return t.mse_loss(layer.forward(t, t.leaf(&input)), target);
  };
  auto eval = [&]() {
    Tape t;
    return t.value(build(t))(0, 0);
  };
  Tape tape;
  Var loss = build(tape);
  input.zero_grad();
  layer.weights().zero_grad();
  tape.backward(loss);
  check_fd(input, eval, input.grad);
  check_fd(layer.weights(), eval, layer.weights().grad);
}

TEST(QuantumLayerGradients, AmplitudeModeProbabilitiesMatchesFd) {
  Rng rng(201);
  QuantumLayer layer(amplitude_config(2, 2, 4, /*probs=*/true), rng);
  Parameter input(random_matrix(1, 4, rng, 0.3, 2.0));
  const Matrix target(1, 4, 0.25);

  auto build = [&](Tape& t) {
    return t.mse_loss(layer.forward(t, t.leaf(&input)), target);
  };
  auto eval = [&]() {
    Tape t;
    return t.value(build(t))(0, 0);
  };
  Tape tape;
  Var loss = build(tape);
  input.zero_grad();
  layer.weights().zero_grad();
  tape.backward(loss);
  check_fd(input, eval, input.grad);
  check_fd(layer.weights(), eval, layer.weights().grad);
}

TEST(QuantumLayerGradients, AngleModeProbabilitiesDecoderPath) {
  // The F-BQ decoder configuration: angle in, probabilities out.
  Rng rng(202);
  QuantumLayerConfig c;
  c.num_qubits = 3;
  c.entangling_layers = 2;
  c.input = QuantumLayerConfig::InputMode::kAngle;
  c.output = QuantumLayerConfig::OutputMode::kProbabilities;
  c.input_dim = 3;
  QuantumLayer layer(c, rng);
  Parameter input(random_matrix(2, 3, rng, -1, 1));
  const Matrix target(2, 8, 0.125);

  auto build = [&](Tape& t) {
    return t.mse_loss(layer.forward(t, t.leaf(&input)), target);
  };
  auto eval = [&]() {
    Tape t;
    return t.value(build(t))(0, 0);
  };
  Tape tape;
  Var loss = build(tape);
  input.zero_grad();
  layer.weights().zero_grad();
  tape.backward(loss);
  check_fd(input, eval, input.grad);
  check_fd(layer.weights(), eval, layer.weights().grad);
}

TEST(QuantumLayer, WeightsInitializedInPiRange) {
  Rng rng(5);
  QuantumLayer layer(angle_config(5, 4), rng);
  for (std::size_t i = 0; i < layer.weights().value.size(); ++i) {
    EXPECT_GE(layer.weights().value[i], -M_PI);
    EXPECT_LE(layer.weights().value[i], M_PI);
  }
}

}  // namespace
}  // namespace sqvae::models
