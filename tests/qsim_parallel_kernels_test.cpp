// Golden equivalence of the amplitude-parallel kernel table
// (kernels::parallel_table()) against the active serial table, and bitwise
// 1-thread-vs-N-thread reproducibility, at register widths 14..16.
//
// Contract under test (kernels.h "amplitude-parallel layer"):
//
//   * gate kernels, elementwise kernels, and the lambda output of
//     apply_diag_observable are BIT-IDENTICAL to the serial table — the
//     parallel drivers run the serial bodies on disjoint chunks with
//     partition-invariant arithmetic — at every thread count;
//   * reductions (inner, norm_squared, expectation_z, the value of
//     apply_diag_observable) use fixed block-ordered accumulation: bitwise
//     reproducible across thread counts, and within 1e-12 of the serial
//     single-chain result;
//   * the high-qubit pair-exchange paths (qubit masks above the chunk
//     size) are covered by targeting the top qubits explicitly.
//
// Widths 14..16 sit above the chunk size (2^12 amplitudes), so both driver
// regimes — chunked sub-array calls and flattened pair-run splitting — are
// exercised. Widths 17..18 ride in qsim_scaling_slow_test.cpp.
#include "qsim/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/rng.h"
#include "qsim/gates.h"

namespace sqvae::qsim {
namespace {

constexpr double kTol = 1e-12;

#ifdef _OPENMP
constexpr int kThreadCounts[] = {1, 2, 3, 4};
#else
// Without OpenMP the drivers run the same chunk loop serially; the sweep
// still pins the chunked-reduction bits.
constexpr int kThreadCounts[] = {1};
#endif

/// Restores the global OpenMP thread count on scope exit.
class ThreadCountGuard {
 public:
  ThreadCountGuard() {
#ifdef _OPENMP
    saved_ = omp_get_max_threads();
#endif
  }
  ~ThreadCountGuard() {
#ifdef _OPENMP
    omp_set_num_threads(saved_);
#endif
  }

 private:
  [[maybe_unused]] int saved_ = 1;
};

void set_threads(int t) {
#ifdef _OPENMP
  omp_set_num_threads(t);
#else
  (void)t;
#endif
}

std::vector<cplx> random_amps(int num_qubits, Rng& rng) {
  std::vector<cplx> amps(std::size_t{1} << num_qubits);
  double norm_sq = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.normal(), rng.normal()};
    norm_sq += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (cplx& a : amps) a *= inv;
  return amps;
}

Mat2 random_unitary(Rng& rng) {
  const Mat2 a = gate_matrix(GateKind::kRZ, rng.uniform(-3.0, 3.0));
  const Mat2 b = gate_matrix(GateKind::kRY, rng.uniform(-3.0, 3.0));
  const Mat2 c = gate_matrix(GateKind::kRX, rng.uniform(-3.0, 3.0));
  return matmul2(a, matmul2(b, c));
}

void expect_amps_bitwise(const std::vector<cplx>& a,
                         const std::vector<cplx>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)), 0);
}

const kernels::KernelTable& par() { return kernels::parallel_table(); }
const kernels::KernelTable& serial() { return kernels::active(); }

/// Target positions spanning every driver regime: adjacent shuffle (0),
/// low strides (1, 2), the chunk boundary neighbourhood (middle), and the
/// high-qubit pair-exchange path (n-2, n-1).
std::vector<int> targets_for(int n) { return {0, 1, 2, n / 2, n - 2, n - 1}; }

/// (control, target) pairs covering both orders of low/high masks.
std::vector<std::pair<int, int>> pairs_for(int n) {
  return {{0, 1},     {1, 0},     {0, n - 1},     {n - 1, 0},
          {n - 2, n - 1}, {n - 1, n - 2}, {1, n / 2}, {n / 2, n - 1}};
}

/// Runs `op` (which mutates a fresh copy of `ref` through some kernel
/// table) once against the serial table and once per thread count against
/// the parallel table; every parallel result must equal the serial bits.
template <typename Op>
void check_gate_bitwise(const std::vector<cplx>& ref, Op op) {
  ThreadCountGuard guard;
  std::vector<cplx> expected = ref;
  op(serial(), expected);
  for (const int t : kThreadCounts) {
    set_threads(t);
    std::vector<cplx> got = ref;
    op(par(), got);
    expect_amps_bitwise(expected, got);
  }
}

TEST(ParallelKernels, ApplySingleBitwiseAtEveryThreadCount) {
  Rng rng(301);
  for (const int n : {14, 16}) {
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<cplx> ref = random_amps(n, rng);
    for (const int target : targets_for(n)) {
      const Mat2 m = random_unitary(rng);
      check_gate_bitwise(ref,
                         [&](const kernels::KernelTable& kt,
                             std::vector<cplx>& amps) {
                           kt.apply_single(amps.data(), dim, m, target);
                         });
    }
  }
}

TEST(ParallelKernels, ApplyControlledSingleBitwiseAtEveryThreadCount) {
  Rng rng(302);
  for (const int n : {14, 16}) {
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<cplx> ref = random_amps(n, rng);
    for (const auto& [control, target] : pairs_for(n)) {
      const Mat2 m = random_unitary(rng);
      check_gate_bitwise(
          ref, [&](const kernels::KernelTable& kt, std::vector<cplx>& amps) {
            kt.apply_controlled_single(amps.data(), dim, m, control, target);
          });
    }
  }
}

TEST(ParallelKernels, CnotCzSwapBitwiseAtEveryThreadCount) {
  Rng rng(303);
  for (const int n : {14, 16}) {
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<cplx> ref = random_amps(n, rng);
    for (const auto& [a, b] : pairs_for(n)) {
      check_gate_bitwise(ref,
                         [&](const kernels::KernelTable& kt,
                             std::vector<cplx>& amps) {
                           kt.apply_cnot(amps.data(), dim, a, b);
                         });
      check_gate_bitwise(ref,
                         [&](const kernels::KernelTable& kt,
                             std::vector<cplx>& amps) {
                           kt.apply_cz(amps.data(), dim, a, b);
                         });
      check_gate_bitwise(ref,
                         [&](const kernels::KernelTable& kt,
                             std::vector<cplx>& amps) {
                           kt.apply_swap(amps.data(), dim, a, b);
                         });
    }
  }
}

TEST(ParallelKernels, DiagonalTableBitwiseAtEveryThreadCount) {
  Rng rng(304);
  for (const int n : {14, 16}) {
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<cplx> ref = random_amps(n, rng);
    kernels::DiagonalRun run;
    run.push_factor(0, cplx{1.0, 0.0}, cplx{0.2, 0.9});
    run.push_factor(n - 1, cplx{0.8, -0.1}, cplx{1.0, 0.0});
    run.push_pair(1, n - 2, cplx{0.5, 0.5}, cplx{-0.5, 0.5});
    std::vector<cplx> table;
    kernels::build_diagonal_table(run, n, table);
    check_gate_bitwise(
        ref, [&](const kernels::KernelTable& kt, std::vector<cplx>& amps) {
          kt.apply_diagonal_table(amps.data(), dim, table.data());
        });
  }
}

TEST(ParallelKernels, PairRunPrimitivesBitwiseAtEveryThreadCount) {
  Rng rng(305);
  const int n = 15;
  const std::size_t half = std::size_t{1} << (n - 1);
  const std::vector<cplx> ref = random_amps(n, rng);
  const Mat2 m = random_unitary(rng);
  check_gate_bitwise(ref, [&](const kernels::KernelTable& kt,
                              std::vector<cplx>& amps) {
    kt.apply_single_pairs(amps.data(), amps.data() + half, half, m);
  });
  check_gate_bitwise(ref, [&](const kernels::KernelTable& kt,
                              std::vector<cplx>& amps) {
    kt.swap_runs(amps.data(), amps.data() + half, half);
  });
  check_gate_bitwise(ref, [&](const kernels::KernelTable& kt,
                              std::vector<cplx>& amps) {
    kt.negate_run(amps.data(), amps.size());
  });
}

TEST(ParallelKernels, ProbabilitiesBitwiseAtEveryThreadCount) {
  ThreadCountGuard guard;
  Rng rng(306);
  for (const int n : {14, 16}) {
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<cplx> amps = random_amps(n, rng);
    std::vector<double> expected(dim);
    serial().probabilities(amps.data(), dim, expected.data());
    for (const int t : kThreadCounts) {
      set_threads(t);
      std::vector<double> got(dim);
      par().probabilities(amps.data(), dim, got.data());
      EXPECT_EQ(
          std::memcmp(expected.data(), got.data(), dim * sizeof(double)), 0)
          << "n=" << n << " threads=" << t;
    }
  }
}

TEST(ParallelKernels, ReductionsNearSerialAndBitwiseAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(307);
  for (const int n : {14, 16}) {
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<cplx> a = random_amps(n, rng);
    const std::vector<cplx> b = random_amps(n, rng);

    // One-thread parallel results are the fixed-order baseline.
    set_threads(1);
    const cplx inner1 = par().inner(a.data(), b.data(), dim);
    const double norm1 = par().norm_squared(a.data(), dim);
    std::vector<double> z1;
    for (const int q : targets_for(n)) {
      z1.push_back(par().expectation_z(a.data(), dim, q));
    }

    // Within tolerance of the serial single-chain reduction.
    EXPECT_NEAR(std::abs(inner1 - serial().inner(a.data(), b.data(), dim)),
                0.0, kTol);
    EXPECT_NEAR(norm1, serial().norm_squared(a.data(), dim), kTol);
    for (std::size_t i = 0; i < z1.size(); ++i) {
      const int q = targets_for(n)[i];
      EXPECT_NEAR(z1[i], serial().expectation_z(a.data(), dim, q), kTol);
    }

    // Bit-identical at every thread count (block-ordered accumulation).
    for (const int t : kThreadCounts) {
      set_threads(t);
      const cplx inner_t = par().inner(a.data(), b.data(), dim);
      EXPECT_EQ(std::memcmp(&inner1, &inner_t, sizeof(cplx)), 0)
          << "inner, n=" << n << " threads=" << t;
      const double norm_t = par().norm_squared(a.data(), dim);
      EXPECT_EQ(std::memcmp(&norm1, &norm_t, sizeof(double)), 0)
          << "norm, n=" << n << " threads=" << t;
      for (std::size_t i = 0; i < z1.size(); ++i) {
        const int q = targets_for(n)[i];
        const double z_t = par().expectation_z(a.data(), dim, q);
        EXPECT_EQ(std::memcmp(&z1[i], &z_t, sizeof(double)), 0)
            << "expectation_z q=" << q << ", n=" << n << " threads=" << t;
      }
    }
  }
}

TEST(ParallelKernels, DiagObservableLambdaBitwiseValueFixedOrder) {
  ThreadCountGuard guard;
  Rng rng(308);
  for (const int n : {14, 16}) {
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<cplx> psi = random_amps(n, rng);
    std::vector<double> diag(dim);
    for (double& d : diag) d = rng.uniform(-2.0, 2.0);

    std::vector<cplx> lambda_serial(dim);
    const double value_serial = serial().apply_diag_observable(
        diag.data(), psi.data(), lambda_serial.data(), dim);

    set_threads(1);
    std::vector<cplx> lambda1(dim);
    const double value1 = par().apply_diag_observable(
        diag.data(), psi.data(), lambda1.data(), dim);
    // Lambda is elementwise: bit-identical to the serial table.
    expect_amps_bitwise(lambda_serial, lambda1);
    EXPECT_NEAR(value1, value_serial, kTol);

    for (const int t : kThreadCounts) {
      set_threads(t);
      std::vector<cplx> lambda_t(dim);
      const double value_t = par().apply_diag_observable(
          diag.data(), psi.data(), lambda_t.data(), dim);
      expect_amps_bitwise(lambda1, lambda_t);
      EXPECT_EQ(std::memcmp(&value1, &value_t, sizeof(double)), 0)
          << "n=" << n << " threads=" << t;
    }
  }
}

TEST(ParallelKernels, TableForRespectsThresholdAndNesting) {
  const std::size_t saved = kernels::parallel_threshold();
  kernels::set_parallel_threshold(std::size_t{1} << 10);
#ifdef _OPENMP
  EXPECT_EQ(&kernels::table_for(std::size_t{1} << 12),
            &kernels::parallel_table());
#else
  EXPECT_EQ(&kernels::table_for(std::size_t{1} << 12), &kernels::active());
#endif
  EXPECT_EQ(&kernels::table_for(std::size_t{1} << 8), &kernels::active());
  kernels::set_parallel_threshold(saved);
}

}  // namespace
}  // namespace sqvae::qsim
