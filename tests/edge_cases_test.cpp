// Cross-module edge cases and smaller invariants that do not fit the
// per-module suites.
#include <gtest/gtest.h>

#include <cmath>

#include "chem/logp.h"
#include "chem/molecule_matrix.h"
#include "chem/qed.h"
#include "chem/sa_score.h"
#include "chem/sanitize.h"
#include "chem/smiles.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/molecule_gen.h"
#include "models/baseline_quantum.h"
#include "models/classical.h"
#include "models/trainer.h"
#include "qsim/adjoint.h"
#include "qsim/circuit.h"
#include "qsim/embedding.h"
#include "qsim/observable.h"
#include "qsim/paramshift.h"

namespace sqvae {
namespace {

// ---------------------------------------------------------------- qsim --

TEST(QsimEdge, SingleQubitCircuitEndToEnd) {
  qsim::Circuit c(1);
  c.strongly_entangling_layers(2, 0);  // no CNOTs on width 1
  std::vector<double> params(6, 0.3);
  const qsim::Statevector s = qsim::run_from_zero(c, params);
  EXPECT_TRUE(s.is_normalized());
  const auto adj = qsim::adjoint_gradient(c, params, qsim::Statevector(1),
                                          qsim::z_diagonal(1, 0));
  const auto fd = qsim::finite_difference_gradient(
      c, params, qsim::Statevector(1), qsim::z_diagonal(1, 0));
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_NEAR(adj.param_grads[i], fd[i], 1e-5) << i;
  }
}

TEST(QsimEdge, ZeroLayerCircuitIsIdentity) {
  qsim::Circuit c(3);
  const int next = c.strongly_entangling_layers(0, 0);
  EXPECT_EQ(next, 0);
  EXPECT_EQ(c.num_ops(), 0u);
  const qsim::Statevector s = qsim::run_from_zero(c, {});
  EXPECT_NEAR(std::abs(s[0] - qsim::cplx{1.0, 0.0}), 0.0, 1e-15);
}

TEST(QsimEdge, AdjointWithConstantOnlyCircuitHasNoParamGrads) {
  qsim::Circuit c(2);
  c.h(0).cnot(0, 1).rz(1, qsim::Param::value(0.7));
  const auto adj = qsim::adjoint_gradient(c, {}, qsim::Statevector(2),
                                          qsim::z_diagonal(2, 1));
  EXPECT_TRUE(adj.param_grads.empty());
  EXPECT_NEAR(adj.value, 0.0, 1e-12);  // Bell state: <Z1> = 0
}

TEST(QsimEdge, AmplitudeEmbeddingOfNegativeValues) {
  const qsim::Statevector s = qsim::amplitude_embedding({-1.0, 1.0}, 1);
  EXPECT_TRUE(s.is_normalized());
  EXPECT_NEAR(s[0].real(), -1.0 / std::sqrt(2.0), 1e-12);
}

TEST(QsimEdge, ExpectationBoundsUnderRandomCircuits) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    qsim::Circuit c(4);
    c.strongly_entangling_layers(3, 0);
    std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()));
    for (double& p : params) p = rng.uniform(-10, 10);  // out-of-range angles
    const qsim::Statevector s = qsim::run_from_zero(c, params);
    for (int q = 0; q < 4; ++q) {
      const double e = s.expectation_z(q);
      EXPECT_GE(e, -1.0 - 1e-12);
      EXPECT_LE(e, 1.0 + 1e-12);
    }
  }
}

// ---------------------------------------------------------------- chem --

TEST(ChemEdge, SingleAtomMolecules) {
  for (chem::Element e : chem::kAllElements) {
    chem::Molecule m;
    m.add_atom(e);
    EXPECT_TRUE(chem::is_valid(m));
    const auto s = chem::to_smiles(m);
    ASSERT_TRUE(s.has_value());
    const auto back = chem::from_smiles(*s);
    ASSERT_TRUE(back.has_value()) << *s;
    EXPECT_EQ(back->atom(0), e);
    EXPECT_GT(chem::qed(m), 0.0);
    EXPECT_LE(chem::sa_score(m), 10.0);
  }
}

TEST(ChemEdge, MatrixLargerThanMolecule) {
  chem::Molecule m;
  m.add_atom(chem::Element::kC);
  const Matrix enc = chem::encode_molecule(m, 32);
  EXPECT_EQ(enc.rows(), 32u);
  EXPECT_EQ(enc(0, 0), 1.0);
  EXPECT_EQ(enc(31, 31), 0.0);
  const chem::Molecule back = chem::decode_molecule(enc);
  EXPECT_EQ(back.num_atoms(), 1);
}

TEST(ChemEdge, DecodeAllZerosIsEmpty) {
  const chem::Molecule m = chem::decode_molecule(Matrix(8, 8));
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(chem::is_valid(m));
}

TEST(ChemEdge, DecodeIgnoresBondsToMissingAtoms) {
  Matrix enc(3, 3);
  enc(0, 0) = 1.0;  // C
  // (1,1) stays 0: no atom; bond entries touching row 1 must be ignored.
  enc(0, 1) = 2.0;
  enc(1, 0) = 2.0;
  enc(2, 2) = 3.0;  // O
  enc(0, 2) = 1.0;
  enc(2, 0) = 1.0;
  const chem::Molecule m = chem::decode_molecule(enc);
  EXPECT_EQ(m.num_atoms(), 2);
  EXPECT_EQ(m.num_bonds(), 1);
  EXPECT_EQ(m.bond_between(0, 1), chem::BondType::kSingle);
}

TEST(ChemEdge, SanitizeIdempotent) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix noisy(8, 8);
    for (std::size_t i = 0; i < noisy.size(); ++i) {
      noisy[i] = rng.uniform(-1, 6);
    }
    const chem::Molecule once = chem::sanitize(chem::decode_molecule(noisy));
    const chem::Molecule twice = chem::sanitize(once);
    EXPECT_EQ(once.num_atoms(), twice.num_atoms());
    EXPECT_EQ(once.num_bonds(), twice.num_bonds());
    EXPECT_EQ(chem::to_smiles(once), chem::to_smiles(twice));
  }
}

TEST(ChemEdge, NormalizedPropertyClipping) {
  // A long alkane's logP exceeds the normalisation max and must clip to 1.
  chem::Molecule chain;
  int prev = chain.add_atom(chem::Element::kC);
  for (int i = 0; i < 39; ++i) {
    const int next = chain.add_atom(chem::Element::kC);
    chain.set_bond(prev, next, chem::BondType::kSingle);
    prev = next;
  }
  EXPECT_EQ(chem::normalized_logp(chain), 1.0);
}

// ---------------------------------------------------------------- data --

TEST(DataEdge, GeneratorRespectsMinAtoms) {
  Rng rng(43);
  data::MoleculeGenConfig config = data::pdbbind_config(32);
  config.min_atoms = 20;
  for (int i = 0; i < 20; ++i) {
    const chem::Molecule m = data::generate_molecule(config, rng);
    // Tree growth can stall early only when all atoms saturate, which the
    // C-rich alphabet makes effectively impossible at this size.
    EXPECT_GE(m.num_atoms(), 18);
    EXPECT_LE(m.num_atoms(), 32);
  }
}

TEST(DataEdge, SingleSampleDatasetSplits) {
  Rng rng(44);
  data::Dataset ds{Matrix(1, 4, 1.0)};
  const auto split = data::train_test_split(ds, 0.15, rng);
  EXPECT_EQ(split.train.size(), 1u);
  EXPECT_EQ(split.test.size(), 0u);
  const auto batches = data::make_batches(1, 32, rng);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 1u);
}

// -------------------------------------------------------------- models --

TEST(ModelsEdge, BatchSizeOneTrains) {
  Rng rng(45);
  models::ClassicalAe model(models::classical_config_64(4), rng);
  Matrix data(3, 64, 0.5);
  models::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 1;
  const auto history = models::Trainer(model, cfg).fit(data, nullptr, rng);
  EXPECT_EQ(history.size(), 2u);
  EXPECT_TRUE(std::isfinite(history.back().train_mse));
}

TEST(ModelsEdge, ReconstructionOfEmptyBatchRows) {
  // All-zero inputs through the fully quantum model: the amplitude
  // embedding maps them to |0...0>, probabilities concentrate at index 0.
  Rng rng(46);
  auto model = models::make_fbq_ae(16, 1, rng);
  Matrix zeros(1, 16);
  const Matrix recon = model->reconstruct(zeros, rng);
  double sum = 0.0;
  for (std::size_t c = 0; c < recon.cols(); ++c) sum += recon(0, c);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ModelsEdge, KlWeightZeroMakesPureReconstructionLoss) {
  Rng rng(47);
  models::ClassicalVae model(models::classical_config_64(4), rng);
  model.set_kl_weight(0.0);
  ad::Tape tape;
  models::LossStats stats;
  Matrix batch(2, 64, 0.3);
  model.build_loss(tape, batch, rng, &stats);
  EXPECT_EQ(stats.total, stats.reconstruction_mse);
}

TEST(ModelsEdge, TrainerLrDecayReducesStepSizes) {
  // With lr_decay << 1 the later epochs barely move parameters: total
  // improvement should be dominated by epoch 1.
  const auto run = [](double decay) {
    Rng rng(48);
    models::ClassicalAe model(models::classical_config_64(4), rng);
    Matrix data(16, 64);
    Rng drng(49);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = drng.uniform(0, 1);
    }
    models::TrainConfig cfg;
    cfg.epochs = 6;
    cfg.batch_size = 8;
    cfg.classical_lr = 0.01;
    cfg.lr_decay = decay;
    Rng trng(50);
    return models::Trainer(model, cfg).fit(data, nullptr, trng);
  };
  const auto fast = run(1.0);
  const auto decayed = run(0.1);
  // Identical first epoch (same seeds), then the decayed run stalls.
  EXPECT_NEAR(fast.front().train_mse, decayed.front().train_mse, 1e-12);
  EXPECT_LT(fast.back().train_mse, decayed.back().train_mse);
}

}  // namespace
}  // namespace sqvae
