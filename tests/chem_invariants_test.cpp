// Descriptor and property invariants swept over the full generator
// distributions — the properties any cheminformatics backend must satisfy
// regardless of molecule.
#include <gtest/gtest.h>

#include <cmath>

#include "chem/descriptors.h"
#include "chem/fingerprint.h"
#include "chem/logp.h"
#include "chem/qed.h"
#include "chem/sa_score.h"
#include "chem/scaffold.h"
#include "chem/smiles.h"
#include "common/rng.h"
#include "data/molecule_gen.h"

namespace sqvae::chem {
namespace {

class DescriptorInvariants
    : public ::testing::TestWithParam<std::tuple<bool, std::uint64_t>> {};

TEST_P(DescriptorInvariants, HoldOverGeneratorDistribution) {
  const auto [pdbbind, seed] = GetParam();
  sqvae::Rng rng(seed);
  const auto config =
      pdbbind ? sqvae::data::pdbbind_config(32) : sqvae::data::qm9_config(8);
  for (int trial = 0; trial < 30; ++trial) {
    const Molecule mol = sqvae::data::generate_molecule(config, rng);
    const Descriptors d = compute_descriptors(mol);

    // Count sanity.
    EXPECT_EQ(d.heavy_atoms, mol.num_atoms());
    EXPECT_GT(d.molecular_weight, 0.0);
    EXPECT_GE(d.hba, 0);
    EXPECT_GE(d.hbd, 0);
    // Every donor among N/O is also an acceptor under Lipinski counting.
    EXPECT_LE(d.hbd, d.hba + mol.num_atoms());  // S-H donors allowed extra
    EXPECT_GE(d.tpsa, 0.0);
    EXPECT_GE(d.rotatable_bonds, 0);
    EXPECT_LE(d.rotatable_bonds, mol.num_bonds());
    EXPECT_GE(d.aromatic_rings, 0);
    EXPECT_LE(d.aromatic_rings, d.rings + 1);
    EXPECT_EQ(d.rings, cyclomatic_number(mol));

    // MW consistency: heavier than the heavy atoms alone (H adds mass),
    // lighter than atoms + 4 H each.
    double heavy = 0.0;
    for (int i = 0; i < mol.num_atoms(); ++i) {
      heavy += atomic_weight(mol.atom(i));
    }
    EXPECT_GE(d.molecular_weight, heavy - 1e-9);
    EXPECT_LE(d.molecular_weight, heavy + 4.1 * mol.num_atoms());

    // Property bounds.
    const double q = qed(mol);
    EXPECT_GT(q, 0.0);
    EXPECT_LE(q, 1.0);
    const double sa = sa_score(mol);
    EXPECT_GE(sa, 1.0);
    EXPECT_LE(sa, 10.0);
    EXPECT_TRUE(std::isfinite(crippen_logp(mol)));

    // Scaffold is a subgraph: never more atoms than the molecule.
    const Molecule scaffold = murcko_scaffold(mol);
    EXPECT_LE(scaffold.num_atoms(), mol.num_atoms());
    if (!scaffold.empty()) {
      EXPECT_TRUE(scaffold.valences_ok());
      // Scaffold of the scaffold is itself (idempotence).
      EXPECT_EQ(murcko_scaffold(scaffold).num_atoms(), scaffold.num_atoms());
    }

    // Fingerprint self-similarity.
    const Fingerprint fp = morgan_fingerprint(mol);
    EXPECT_EQ(tanimoto(fp, fp), 1.0);

    // Formula parses back to the right heavy-atom count.
    const std::string formula = molecular_formula(mol);
    EXPECT_FALSE(formula.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Generators, DescriptorInvariants,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(201u, 202u, 203u)));

TEST(PropertyMonotonicity, AddingPolarGroupsLowersLogp) {
  // Successively oxygenating a hexane chain must monotonically lower logP.
  auto build = [](int hydroxyls) {
    Molecule m;
    int prev = m.add_atom(Element::kC);
    for (int i = 0; i < 5; ++i) {
      const int next = m.add_atom(Element::kC);
      m.set_bond(prev, next, BondType::kSingle);
      prev = next;
    }
    for (int h = 0; h < hydroxyls; ++h) {
      const int o = m.add_atom(Element::kO);
      m.set_bond(h, o, BondType::kSingle);
    }
    return m;
  };
  double previous = crippen_logp(build(0));
  for (int h = 1; h <= 3; ++h) {
    const double current = crippen_logp(build(h));
    EXPECT_LT(current, previous) << h;
    previous = current;
  }
}

TEST(PropertyMonotonicity, GrowingChainRaisesMwAndSaPenalty) {
  double prev_mw = 0.0;
  for (int n : {5, 10, 20, 30}) {
    Molecule m;
    int prev = m.add_atom(Element::kC);
    for (int i = 1; i < n; ++i) {
      const int next = m.add_atom(Element::kC);
      m.set_bond(prev, next, BondType::kSingle);
      prev = next;
    }
    const double mw = m.molecular_weight();
    EXPECT_GT(mw, prev_mw);
    prev_mw = mw;
  }
}

TEST(PropertyMonotonicity, TpsaAdditiveOverDistantGroups) {
  // TPSA of a diol ~ 2x TPSA of the mono-ol (contributions are per-atom).
  const auto mono = from_smiles("CCCCCO").value();
  const auto diol = from_smiles("OCCCCCO").value();
  EXPECT_NEAR(topological_polar_surface_area(diol),
              2.0 * topological_polar_surface_area(mono), 1e-9);
}

}  // namespace
}  // namespace sqvae::chem
