#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "qsim/circuit.h"
#include "qsim/embedding.h"
#include "qsim/noise.h"
#include "qsim/sampling.h"

namespace sqvae::qsim {
namespace {

TEST(Sampling, DeterministicStateAlwaysSamplesSameOutcome) {
  Rng rng(1);
  Statevector s(3);
  s.apply_single(gate_matrix(GateKind::kX, 0), 1);  // |010> = index 2
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sample_basis_state(s, rng), 2u);
  }
}

TEST(Sampling, HistogramConvergesToProbabilities) {
  Rng rng(2);
  Statevector s(2);
  s.apply_single(gate_matrix(GateKind::kRY, 1.1), 0);
  s.apply_single(gate_matrix(GateKind::kRY, 0.4), 1);
  const auto exact = s.probabilities();
  const auto estimate = estimate_probabilities(s, 200000, rng);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(estimate[i], exact[i], 0.01) << i;
  }
}

TEST(Sampling, ExpectationEstimateConverges) {
  Rng rng(3);
  Statevector s(3);
  for (int q = 0; q < 3; ++q) {
    s.apply_single(gate_matrix(GateKind::kRY, 0.5 + 0.4 * q), q);
  }
  const auto exact = expectations_z(s);
  const auto estimate = estimate_expectations_z(s, 200000, rng);
  for (std::size_t q = 0; q < 3; ++q) {
    EXPECT_NEAR(estimate[q], exact[q], 0.01) << q;
  }
}

TEST(Sampling, ErrorShrinksWithShots) {
  // Standard error ~ 1/sqrt(shots): the 100x-shot estimate should be
  // closer on average. Use several independent repetitions to de-noise.
  Statevector s(1);
  s.apply_single(gate_matrix(GateKind::kH, 0.0), 0);  // <Z> = 0
  double coarse_error = 0.0, fine_error = 0.0;
  Rng rng(4);
  for (int rep = 0; rep < 20; ++rep) {
    coarse_error += std::abs(estimate_expectations_z(s, 100, rng)[0]);
    fine_error += std::abs(estimate_expectations_z(s, 10000, rng)[0]);
  }
  EXPECT_LT(fine_error, coarse_error);
}

TEST(Sampling, ShotsVectorHasRequestedSize) {
  Rng rng(5);
  Statevector s(2);
  s.apply_single(gate_matrix(GateKind::kH, 0.0), 0);
  const auto shots = sample_shots(s, 123, rng);
  EXPECT_EQ(shots.size(), 123u);
  for (std::size_t outcome : shots) EXPECT_LT(outcome, 4u);
}

TEST(Noise, ZeroErrorMatchesCleanRun) {
  Rng rng(6);
  Circuit c(3);
  c.strongly_entangling_layers(2, 0);
  std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()));
  for (double& p : params) p = rng.uniform(-3, 3);

  Statevector noisy(3);
  run_noisy(c, params, noisy, NoiseModel{0.0}, rng);
  const Statevector clean = run_from_zero(c, params);
  for (std::size_t i = 0; i < clean.dim(); ++i) {
    EXPECT_NEAR(std::abs(noisy[i] - clean[i]), 0.0, 1e-14);
  }
}

TEST(Noise, TrajectoriesStayNormalized) {
  Rng rng(7);
  Circuit c(4);
  c.strongly_entangling_layers(3, 0);
  std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()));
  for (double& p : params) p = rng.uniform(-3, 3);
  for (int t = 0; t < 10; ++t) {
    Statevector s(4);
    run_noisy(c, params, s, NoiseModel{0.3}, rng);
    EXPECT_TRUE(s.is_normalized(1e-9));
  }
}

TEST(Noise, DepolarizationShrinksExpectations) {
  // Identity circuit on |0>: clean <Z> = 1. With per-gate Pauli error the
  // averaged expectation must drop strictly below 1 toward 0.
  Rng rng(8);
  Circuit c(1);
  // 20 no-op RZ gates: each one is a noise opportunity.
  for (int i = 0; i < 20; ++i) c.rz(0, Param::value(0.0));
  const auto clean = noisy_expectations_z(c, {}, NoiseModel{0.0}, 1, rng);
  EXPECT_NEAR(clean[0], 1.0, 1e-12);
  const auto noisy =
      noisy_expectations_z(c, {}, NoiseModel{0.05}, 4000, rng);
  EXPECT_LT(noisy[0], 0.9);
  EXPECT_GT(noisy[0], 0.0);
}

TEST(Noise, StrongNoiseFullyDepolarizes) {
  // With error probability ~1 on many gates, <Z> approaches 0.
  Rng rng(9);
  Circuit c(1);
  for (int i = 0; i < 30; ++i) c.rz(0, Param::value(0.0));
  const auto e = noisy_expectations_z(c, {}, NoiseModel{0.9}, 6000, rng);
  EXPECT_NEAR(e[0], 0.0, 0.05);
}

TEST(Noise, MatchesAnalyticDepolarizingRate) {
  // One qubit, k noise opportunities at error p: a Pauli error flips the
  // sign of <Z> with probability 2/3 per occurrence, so
  // E[<Z>] = (1 - 4p/3)^k (single-qubit depolarizing algebra).
  Rng rng(10);
  const double p = 0.08;
  const int k = 10;
  Circuit c(1);
  for (int i = 0; i < k; ++i) c.rz(0, Param::value(0.0));
  const auto e = noisy_expectations_z(c, {}, NoiseModel{p}, 40000, rng);
  const double analytic = std::pow(1.0 - 4.0 * p / 3.0, k);
  EXPECT_NEAR(e[0], analytic, 0.02);
}

}  // namespace
}  // namespace sqvae::qsim
