#include "models/latent_optimize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "models/classical.h"

namespace sqvae::models {
namespace {

TEST(LatentOptimize, MaximizesSmoothObjective) {
  // Objective depends smoothly on the decoded features; the ES loop must
  // improve it well beyond the first generation's incumbent.
  Rng rng(1);
  ClassicalVae model(classical_config_64(6), rng);
  const LatentObjective objective = [](const std::vector<double>& f) {
    // Peak when feature 0 is large and feature 1 is near 0.5.
    return f[0] - (f[1] - 0.5) * (f[1] - 0.5);
  };
  LatentOptimizeConfig config;
  config.population = 24;
  config.elites = 6;
  config.generations = 25;
  const LatentOptimizeResult result =
      optimize_latent(model, objective, config, rng);
  EXPECT_GT(result.best_score, result.history.front());
  EXPECT_EQ(result.best_latent.size(), 6u);
  EXPECT_EQ(result.best_features.size(), 64u);
}

TEST(LatentOptimize, HistoryIsMonotoneAndSized) {
  Rng rng(2);
  ClassicalVae model(classical_config_64(4), rng);
  const LatentObjective objective = [](const std::vector<double>& f) {
    return -std::abs(f[3]);
  };
  LatentOptimizeConfig config;
  config.population = 8;
  config.elites = 2;
  config.generations = 10;
  const LatentOptimizeResult result =
      optimize_latent(model, objective, config, rng);
  ASSERT_EQ(result.history.size(), 10u);
  for (std::size_t g = 1; g < result.history.size(); ++g) {
    EXPECT_GE(result.history[g], result.history[g - 1]);
  }
  EXPECT_EQ(result.history.back(), result.best_score);
}

TEST(LatentOptimize, DeterministicGivenSeed) {
  const auto run = [] {
    Rng rng(3);
    ClassicalVae model(classical_config_64(4), rng);
    LatentOptimizeConfig config;
    config.population = 8;
    config.elites = 2;
    config.generations = 5;
    Rng opt_rng(55);
    return optimize_latent(
        model, [](const std::vector<double>& f) { return f[0] + f[7]; },
        config, opt_rng);
  };
  const LatentOptimizeResult a = run();
  const LatentOptimizeResult b = run();
  EXPECT_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.best_latent, b.best_latent);
}

TEST(LatentOptimize, SeededSearchStaysNearLead) {
  // With a tight sigma and a seed, the first generation must sample near
  // the seed (the decoded best should reflect the seeded region).
  Rng rng(4);
  ClassicalVae model(classical_config_64(3), rng);
  std::vector<double> seed = {2.0, -1.0, 0.5};
  LatentOptimizeConfig config;
  config.population = 8;
  config.elites = 2;
  config.generations = 1;
  config.initial_sigma = 0.01;
  config.sigma_floor = 0.01;
  config.initial_mu = seed;
  const LatentOptimizeResult result = optimize_latent(
      model, [](const std::vector<double>&) { return 1.0; }, config, rng);
  for (std::size_t c = 0; c < seed.size(); ++c) {
    EXPECT_NEAR(result.best_latent[c], seed[c], 0.1) << c;
  }
}

TEST(LatentOptimize, SigmaFloorKeepsExploring) {
  // Even when all elites are identical (constant objective picks the first
  // rows), sigma never collapses below the floor, so later generations
  // still vary. Verified indirectly: best_latent over two long runs with
  // different rng seeds differ.
  Rng rng_a(5), rng_b(6);
  ClassicalVae model_a(classical_config_64(3), rng_a);
  LatentOptimizeConfig config;
  config.population = 6;
  config.elites = 3;
  config.generations = 8;
  config.sigma_floor = 0.5;
  Rng opt_a(10), opt_b(20);
  const auto r1 = optimize_latent(
      model_a, [](const std::vector<double>& f) { return f[0]; }, config,
      opt_a);
  const auto r2 = optimize_latent(
      model_a, [](const std::vector<double>& f) { return f[0]; }, config,
      opt_b);
  EXPECT_NE(r1.best_latent, r2.best_latent);
}

TEST(LatentOptimize, QedObjectiveOnEmptyFeatures) {
  // All-zero features decode to an empty molecule: objective must be 0,
  // not a crash.
  const LatentObjective objective = qed_objective(8);
  EXPECT_EQ(objective(std::vector<double>(64, 0.0)), 0.0);
}

}  // namespace
}  // namespace sqvae::models
