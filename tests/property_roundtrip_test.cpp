// Property-based round-trip suites over the full generator distributions:
// the invariants that make the training data and the decode pipeline
// trustworthy, swept across seeds with parameterized gtest.
#include <gtest/gtest.h>

#include "chem/fingerprint.h"
#include "chem/molecule_matrix.h"
#include "chem/sanitize.h"
#include "chem/smiles.h"
#include "common/rng.h"
#include "data/molecule_gen.h"
#include "qsim/circuit.h"

namespace sqvae {
namespace {

struct RoundTripCase {
  bool pdbbind;
  std::uint64_t seed;
};

class MoleculeRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(MoleculeRoundTrip, EncodeDecodeIsIdentityOnGeneratedMolecules) {
  const auto [pdbbind, seed] = GetParam();
  Rng rng(seed);
  const data::MoleculeGenConfig config =
      pdbbind ? data::pdbbind_config(32) : data::qm9_config(8);
  const std::size_t dim = pdbbind ? 32 : 8;
  for (int trial = 0; trial < 25; ++trial) {
    const chem::Molecule mol = data::generate_molecule(config, rng);
    const chem::Molecule back =
        chem::decode_molecule(chem::encode_molecule(mol, dim));
    // Graph identity via canonical SMILES (atom order is preserved by the
    // codec, but SMILES equality is the stronger, order-free statement).
    EXPECT_EQ(chem::to_smiles(mol), chem::to_smiles(back))
        << "seed " << seed << " trial " << trial;
    EXPECT_EQ(mol.num_atoms(), back.num_atoms());
    EXPECT_EQ(mol.num_bonds(), back.num_bonds());
  }
}

TEST_P(MoleculeRoundTrip, SmilesRoundTripOnGeneratedMolecules) {
  const auto [pdbbind, seed] = GetParam();
  Rng rng(seed + 1000);
  const data::MoleculeGenConfig config =
      pdbbind ? data::pdbbind_config(32) : data::qm9_config(8);
  for (int trial = 0; trial < 25; ++trial) {
    const chem::Molecule mol = data::generate_molecule(config, rng);
    const auto smiles = chem::to_smiles(mol);
    ASSERT_TRUE(smiles.has_value());
    const auto parsed = chem::from_smiles(*smiles);
    ASSERT_TRUE(parsed.has_value()) << *smiles;
    // Canonical form is a fixed point of write-parse-write.
    EXPECT_EQ(chem::to_smiles(*parsed), smiles) << *smiles;
    // Parsing preserves the molecular graph up to isomorphism: same
    // fingerprint and atom/bond counts.
    EXPECT_EQ(chem::morgan_fingerprint(*parsed), chem::morgan_fingerprint(mol))
        << *smiles;
    EXPECT_EQ(parsed->num_atoms(), mol.num_atoms());
    EXPECT_EQ(parsed->num_bonds(), mol.num_bonds());
  }
}

TEST_P(MoleculeRoundTrip, SanitizeLeavesGeneratedMoleculesUntouched) {
  const auto [pdbbind, seed] = GetParam();
  Rng rng(seed + 2000);
  const data::MoleculeGenConfig config =
      pdbbind ? data::pdbbind_config(32) : data::qm9_config(8);
  for (int trial = 0; trial < 25; ++trial) {
    const chem::Molecule mol = data::generate_molecule(config, rng);
    chem::SanitizeStats stats;
    const chem::Molecule out = chem::sanitize(mol, &stats);
    EXPECT_EQ(stats.valence_demotions, 0);
    EXPECT_EQ(stats.bonds_removed, 0);
    EXPECT_EQ(stats.aromatic_demotions, 0);
    EXPECT_EQ(stats.atoms_dropped, 0);
    EXPECT_EQ(chem::to_smiles(out), chem::to_smiles(mol));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Generators, MoleculeRoundTrip,
    ::testing::Values(RoundTripCase{false, 1}, RoundTripCase{false, 2},
                      RoundTripCase{false, 3}, RoundTripCase{true, 4},
                      RoundTripCase{true, 5}, RoundTripCase{true, 6}));

class CircuitInverse : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CircuitInverse, RunThenDaggerRestoresArbitraryStates) {
  Rng rng(GetParam());
  const int qubits = rng.uniform_int(2, 6);
  qsim::Circuit c(qubits);
  c.strongly_entangling_layers(rng.uniform_int(1, 4), 0);
  std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()));
  for (double& p : params) p = rng.uniform(-3, 3);

  // Random (normalised) start state via a scrambling prefix.
  qsim::Statevector s(qubits);
  for (int q = 0; q < qubits; ++q) {
    s.apply_single(qsim::gate_matrix(qsim::GateKind::kRY, rng.uniform(-3, 3)),
                   q);
    s.apply_single(qsim::gate_matrix(qsim::GateKind::kRZ, rng.uniform(-3, 3)),
                   q);
  }
  const qsim::Statevector original = s;
  qsim::run(c, params, s);
  const auto& ops = c.ops();
  for (std::size_t k = ops.size(); k > 0; --k) {
    qsim::apply_op_dagger(s, ops[k - 1], params);
  }
  for (std::size_t i = 0; i < s.dim(); ++i) {
    EXPECT_NEAR(std::abs(s[i] - original[i]), 0.0, 1e-11) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitInverse,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

}  // namespace
}  // namespace sqvae
