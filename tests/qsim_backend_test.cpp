// Statistical-equivalence and determinism suite for the simulation-backend
// layer (qsim/backend.h).
//
// The load-bearing checks are the 3-sigma equivalence tests: the trajectory
// backend is an unbiased Monte-Carlo unravelling of the depolarizing
// channel, so over >= 2000 trajectories its per-qubit <Z> means must land
// within 3 standard errors of the exact DensityMatrix result on randomized
// noisy circuits; the shot backend's estimates must converge to the exact
// statevector expectations as shots grow. All stochastic draws are seeded,
// so every test is deterministic run-to-run.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cmath>

#include "common/rng.h"
#include "models/quantum_layer.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"
#include "qsim/backend.h"
#include "qsim/density_matrix.h"
#include "qsim/embedding.h"

namespace sqvae::qsim {
namespace {

/// Random embedding + entangling circuit of the models' shape.
Circuit random_circuit(int qubits, int layers) {
  Circuit c(qubits);
  int slot = c.angle_embedding(0);
  c.strongly_entangling_layers(layers, slot);
  return c;
}

std::vector<double> random_params(const Circuit& c, sqvae::Rng& rng) {
  std::vector<double> p(static_cast<std::size_t>(c.num_param_slots()));
  for (double& v : p) v = rng.uniform(-3.14159, 3.14159);
  return p;
}

SimulationOptions trajectory_options(double gate_error, std::size_t shots,
                                     std::uint64_t seed) {
  SimulationOptions o;
  o.backend = BackendKind::kTrajectory;
  o.shots = shots;
  o.noise.gate_error = gate_error;
  o.seed = seed;
  return o;
}

SimulationOptions shot_options(std::size_t shots, std::uint64_t seed) {
  SimulationOptions o;
  o.backend = BackendKind::kShotSampling;
  o.shots = shots;
  o.seed = seed;
  return o;
}

TEST(StatevectorBackend, MatchesDirectExecutorRun) {
  sqvae::Rng rng(1);
  const Circuit c = random_circuit(5, 3);
  const CircuitExecutor exec(c);
  const auto params = random_params(c, rng);

  auto backend = SimulationBackend::create(SimulationOptions{});
  ASSERT_EQ(backend->kind(), BackendKind::kStatevector);

  const Statevector state = exec.run_from_zero(params);
  const auto exact_z = expectations_z(state);
  const auto backend_z = backend->expectations_z(exec, params);
  ASSERT_EQ(backend_z.size(), exact_z.size());
  for (std::size_t q = 0; q < exact_z.size(); ++q) {
    EXPECT_NEAR(backend_z[q], exact_z[q], 1e-12) << q;
  }

  const auto exact_p = state.probabilities();
  const auto backend_p = backend->probabilities(exec, params);
  ASSERT_EQ(backend_p.size(), exact_p.size());
  for (std::size_t i = 0; i < exact_p.size(); ++i) {
    EXPECT_NEAR(backend_p[i], exact_p[i], 1e-12) << i;
  }
}

TEST(TrajectoryBackend, ZeroNoiseReproducesExactExpectations) {
  sqvae::Rng rng(2);
  const Circuit c = random_circuit(4, 3);
  const CircuitExecutor exec(c);
  const auto params = random_params(c, rng);

  TrajectoryBackend backend(trajectory_options(0.0, 8, 7));
  const auto traj = backend.expectations_z(exec, params);
  const auto exact = expectations_z(exec.run_from_zero(params));
  for (std::size_t q = 0; q < exact.size(); ++q) {
    EXPECT_NEAR(traj[q], exact[q], 1e-12) << q;
  }
}

// The core 3-sigma statistical-equivalence check: trajectory means vs the
// exact density-matrix channel, randomized circuits, two error rates.
TEST(TrajectoryBackend, MatchesDensityMatrixWithin3Sigma) {
  const std::size_t kTrajectories = 2500;  // >= 2000 per the suite contract
  std::uint64_t seed = 100;
  for (const double gate_error : {0.02, 0.05}) {
    for (const int qubits : {3, 4}) {
      sqvae::Rng rng(seed);
      const Circuit c = random_circuit(qubits, 3);
      const auto params = random_params(c, rng);
      const CircuitExecutor exec(c);

      NoiseModel noise{gate_error};
      const DensityMatrix rho = run_density(c, params, noise);

      TrajectoryBackend backend(
          trajectory_options(gate_error, kTrajectories, seed));
      const TrajectoryEstimate est =
          backend.expectations_z_with_stats(exec, params);

      for (int q = 0; q < qubits; ++q) {
        const double exact = rho.expectation_z(q);
        const double sigma = est.std_error[static_cast<std::size_t>(q)];
        // Small floor guards the (measure-zero) case of a degenerate
        // per-trajectory spread estimate.
        const double bound = 3.0 * sigma + 1e-6;
        EXPECT_NEAR(est.mean[static_cast<std::size_t>(q)], exact, bound)
            << "p=" << gate_error << " qubits=" << qubits << " q=" << q;
      }
      ++seed;
    }
  }
}

TEST(TrajectoryBackend, ProbabilitiesMatchDensityDiagonalWithin3Sigma) {
  const std::size_t kTrajectories = 2500;
  sqvae::Rng rng(11);
  const Circuit c = random_circuit(4, 2);
  const auto params = random_params(c, rng);
  const CircuitExecutor exec(c);
  const double gate_error = 0.04;

  const DensityMatrix rho = run_density(c, params, NoiseModel{gate_error});
  const auto exact = rho.probabilities();

  TrajectoryBackend backend(
      trajectory_options(gate_error, kTrajectories, 21));
  const std::vector<Statevector> initials(1, Statevector(4));
  const auto probs =
      backend.probabilities_batch(exec, {params}, initials)[0];

  ASSERT_EQ(probs.size(), exact.size());
  double total = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    // Per-trajectory bin values live in [0, 1], so the mean's standard
    // error is bounded by 1/(2 sqrt(M)) (Popoviciu).
    const double bound =
        3.0 * 0.5 / std::sqrt(static_cast<double>(kTrajectories));
    EXPECT_NEAR(probs[i], exact[i], bound) << i;
    total += probs[i];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);  // trajectories stay normalised
}

// The trajectory estimator must agree with the seed-era per-gate
// interpreter (run_noisy) in distribution; both unravel the same channel.
TEST(TrajectoryBackend, AgreesWithLegacyRunNoisy) {
  sqvae::Rng rng(31);
  const Circuit c = random_circuit(3, 2);
  const auto params = random_params(c, rng);
  const CircuitExecutor exec(c);
  const double gate_error = 0.05;
  const std::size_t m = 4000;

  sqvae::Rng legacy_rng(77);
  const auto legacy =
      noisy_expectations_z(c, params, NoiseModel{gate_error}, m, legacy_rng);

  TrajectoryBackend backend(trajectory_options(gate_error, m, 78));
  const TrajectoryEstimate est = backend.expectations_z_with_stats(
      exec, params);
  for (std::size_t q = 0; q < legacy.size(); ++q) {
    // Two independent Monte-Carlo means: combined sigma is at most
    // sqrt(2) * max stderr; use the backend's measured one for both.
    const double bound = 3.0 * std::sqrt(2.0) * est.std_error[q] + 1e-6;
    EXPECT_NEAR(est.mean[q], legacy[q], bound) << q;
  }
}

TEST(ShotBackend, ConvergesToExactExpectationsAsShotsGrow) {
  sqvae::Rng rng(3);
  const Circuit c = random_circuit(4, 3);
  const CircuitExecutor exec(c);
  const auto params = random_params(c, rng);
  const auto exact = expectations_z(exec.run_from_zero(params));

  double previous_rms = 1e9;
  for (const std::size_t shots : {64u, 4096u, 262144u}) {
    ShotSamplingBackend backend(shot_options(shots, 5));
    const auto est = backend.expectations_z(exec, params);
    double rms = 0.0;
    for (std::size_t q = 0; q < exact.size(); ++q) {
      rms += (est[q] - exact[q]) * (est[q] - exact[q]);
      // Exact binomial-sampling error bar: sigma^2 = (1 - <Z>^2) / shots.
      const double sigma =
          std::sqrt((1.0 - exact[q] * exact[q]) /
                    static_cast<double>(shots));
      EXPECT_NEAR(est[q], exact[q], 3.0 * sigma + 1e-9)
          << "shots=" << shots << " q=" << q;
    }
    rms = std::sqrt(rms / static_cast<double>(exact.size()));
    EXPECT_LT(rms, previous_rms) << "shots=" << shots;
    previous_rms = rms;
  }
}

TEST(ShotBackend, ProbabilityHistogramIsNormalisedAndConverges) {
  sqvae::Rng rng(4);
  const Circuit c = random_circuit(3, 2);
  const CircuitExecutor exec(c);
  const auto params = random_params(c, rng);
  const auto exact = exec.run_from_zero(params).probabilities();

  ShotSamplingBackend backend(shot_options(200000, 6));
  const auto est = backend.probabilities(exec, params);
  double total = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(est[i], exact[i], 0.01) << i;
    total += est[i];
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

// ---- seed plumbing / determinism -----------------------------------------

TEST(BackendDeterminism, SameSeedIsBitReproducible) {
  sqvae::Rng rng(5);
  const Circuit c = random_circuit(4, 3);
  const CircuitExecutor exec(c);
  const auto params = random_params(c, rng);

  for (const auto& options :
       {trajectory_options(0.03, 500, 42), shot_options(2000, 42)}) {
    auto a = SimulationBackend::create(options);
    auto b = SimulationBackend::create(options);
    const auto za = a->expectations_z(exec, params);
    const auto zb = b->expectations_z(exec, params);
    ASSERT_EQ(za.size(), zb.size());
    for (std::size_t q = 0; q < za.size(); ++q) {
      // Bitwise equality, not approximate: the whole stream design exists
      // to make fixed seeds reproduce exactly.
      EXPECT_EQ(za[q], zb[q]) << q;
    }
  }
}

TEST(BackendDeterminism, DifferentSeedsDecorrelate) {
  sqvae::Rng rng(6);
  const Circuit c = random_circuit(4, 3);
  const CircuitExecutor exec(c);
  const auto params = random_params(c, rng);

  ShotSamplingBackend a(shot_options(1000, 1));
  ShotSamplingBackend b(shot_options(1000, 2));
  const auto za = a.expectations_z(exec, params);
  const auto zb = b.expectations_z(exec, params);
  bool any_different = false;
  for (std::size_t q = 0; q < za.size(); ++q) {
    any_different = any_different || za[q] != zb[q];
  }
  EXPECT_TRUE(any_different);
}

TEST(BackendDeterminism, CallCounterAdvancesAndReplays) {
  sqvae::Rng rng(7);
  const Circuit c = random_circuit(3, 2);
  const CircuitExecutor exec(c);
  const auto params = random_params(c, rng);
  const auto options = shot_options(500, 9);

  ShotSamplingBackend a(options);
  const auto first = a.expectations_z(exec, params);
  const auto second = a.expectations_z(exec, params);
  bool fresh_noise = false;
  for (std::size_t q = 0; q < first.size(); ++q) {
    fresh_noise = fresh_noise || first[q] != second[q];
  }
  EXPECT_TRUE(fresh_noise) << "repeated calls must see fresh randomness";

  // A same-seeded backend replays the identical call sequence.
  ShotSamplingBackend b(options);
  const auto first_b = b.expectations_z(exec, params);
  const auto second_b = b.expectations_z(exec, params);
  for (std::size_t q = 0; q < first.size(); ++q) {
    EXPECT_EQ(first[q], first_b[q]) << q;
    EXPECT_EQ(second[q], second_b[q]) << q;
  }
}

// Thread-count invariance: every trajectory/sample owns a stream derived
// from its index (never from the executing thread), and Monte-Carlo means
// reduce from a per-trajectory buffer in fixed order — so a 1-thread run
// must be bit-identical to the default-thread run.
TEST(BackendDeterminism, SingleThreadMatchesParallelBitwise) {
  sqvae::Rng rng(8);
  const Circuit c = random_circuit(5, 3);
  const CircuitExecutor exec(c);
  const auto params = random_params(c, rng);

  const auto traj_opts = trajectory_options(0.03, 800, 13);
  const auto shot_opts = shot_options(5000, 13);

  std::vector<std::vector<double>> parallel_results;
  {
    TrajectoryBackend t(traj_opts);
    ShotSamplingBackend s(shot_opts);
    parallel_results.push_back(t.expectations_z(exec, params));
    parallel_results.push_back(s.expectations_z(exec, params));
  }

#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  std::vector<std::vector<double>> serial_results;
  {
    TrajectoryBackend t(traj_opts);
    ShotSamplingBackend s(shot_opts);
    serial_results.push_back(t.expectations_z(exec, params));
    serial_results.push_back(s.expectations_z(exec, params));
  }
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif

  for (std::size_t k = 0; k < parallel_results.size(); ++k) {
    for (std::size_t q = 0; q < parallel_results[k].size(); ++q) {
      EXPECT_EQ(parallel_results[k][q], serial_results[k][q])
          << "backend " << k << " qubit " << q;
    }
  }
}

// ---- SimulationOptions threading through the model stack -----------------

TEST(BackendIntegration, QuantumLayerHonoursSimulationOptions) {
  using models::QuantumLayer;
  using models::QuantumLayerConfig;

  QuantumLayerConfig config;
  config.num_qubits = 3;
  config.input_dim = 3;
  config.entangling_layers = 2;

  sqvae::Rng init_rng(10);
  QuantumLayer exact_layer(config, init_rng);

  config.sim = shot_options(256, 3);
  sqvae::Rng init_rng2(10);  // identical weights
  QuantumLayer shot_layer(config, init_rng2);
  EXPECT_EQ(shot_layer.backend().kind(), BackendKind::kShotSampling);

  Matrix input(2, 3);
  sqvae::Rng data_rng(11);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = data_rng.uniform(-1, 1);
  }

  const Matrix exact = exact_layer.forward_values(input);
  const Matrix shot = shot_layer.forward_values(input);
  ASSERT_EQ(exact.rows(), shot.rows());
  ASSERT_EQ(exact.cols(), shot.cols());
  bool sampling_noise = false;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(shot[i], exact[i], 0.5) << i;  // coarse: 256 shots
    sampling_noise = sampling_noise || shot[i] != exact[i];
  }
  EXPECT_TRUE(sampling_noise);

  // Switching back to the exact backend restores exact values.
  shot_layer.set_simulation_options(SimulationOptions{});
  const Matrix restored = shot_layer.forward_values(input);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(restored[i], exact[i], 1e-12) << i;
  }
}

TEST(BackendIntegration, TrainerSwitchesRegimeThroughOneOption) {
  using namespace models;

  ScalableQuantumConfig config;
  config.input_dim = 16;
  config.patches = 2;
  config.entangling_layers = 1;
  sqvae::Rng rng(12);
  auto model = make_sq_ae(config, rng);

  Matrix train(8, 16);
  for (std::size_t i = 0; i < train.size(); ++i) {
    train[i] = rng.uniform(0, 1);
  }

  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 4;
  tc.sim = shot_options(128, 17);
  Trainer trainer(*model, tc);
  const auto history = trainer.fit(train, nullptr, rng);
  ASSERT_EQ(history.size(), 1u);
  EXPECT_TRUE(std::isfinite(history[0].train_loss));
  // The trainer must have switched every patch layer's backend.
  // (Spot-check through a fresh forward: values change run to run under
  // shot sampling but stay finite.)
  const double mse = model->evaluate_mse(train, rng);
  EXPECT_TRUE(std::isfinite(mse));
}

}  // namespace
}  // namespace sqvae::qsim
