// Behavioural equivalence of the annotated sq primitives (common/mutex.h)
// with the std primitives they wrap. The annotations themselves are
// compile-time-only and clang-only; this suite pins down that under any
// compiler the wrappers are exactly std::mutex / std::lock_guard /
// std::condition_variable in behaviour: mutual exclusion, try_lock
// semantics, RAII release, early unlock / re-lock, condition waits with
// spurious-wakeup discipline, and timed waits. Runs in the tier-1 lane
// (and the TSan threaded lane, which verifies the wrappers introduce no
// races of their own).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace {

using namespace std::chrono_literals;

TEST(SqMutex, LockUnlockAndTryLockMatchStdSemantics) {
  sq::Mutex mu;
  // Unlocked: try_lock succeeds, like std::mutex.
  ASSERT_TRUE(mu.try_lock());
  // Held (by this thread): try_lock from another thread fails.
  std::atomic<int> observed{-1};
  std::thread probe([&] { observed = mu.try_lock() ? 1 : 0; });
  probe.join();
  EXPECT_EQ(observed.load(), 0);
  mu.unlock();
  // Released: another thread can take it again.
  std::thread probe2([&] {
    observed = mu.try_lock() ? 1 : 0;
    if (observed == 1) mu.unlock();
  });
  probe2.join();
  EXPECT_EQ(observed.load(), 1);
}

TEST(SqMutexLock, RaiiAcquiresAndReleases) {
  sq::Mutex mu;
  {
    sq::MutexLock lock(mu);
    std::atomic<bool> got{true};
    std::thread probe([&] {
      got = mu.try_lock();
      if (got) mu.unlock();
    });
    probe.join();
    EXPECT_FALSE(got.load()) << "MutexLock must hold the mutex in scope";
  }
  // Destructor released it.
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SqMutexLock, EarlyUnlockAndRelock) {
  sq::Mutex mu;
  sq::MutexLock lock(mu);
  lock.unlock();  // early release: the destructor must then do nothing
  {
    // Another thread can take the mutex while `lock` is disengaged.
    std::atomic<bool> got{false};
    std::thread probe([&] {
      got = mu.try_lock();
      if (got) mu.unlock();
    });
    probe.join();
    EXPECT_TRUE(got.load());
  }
  lock.lock();  // re-acquire through the same RAII object
  std::atomic<bool> got{true};
  std::thread probe([&] {
    got = mu.try_lock();
    if (got) mu.unlock();
  });
  probe.join();
  EXPECT_FALSE(got.load());
}

TEST(SqMutex, MutualExclusionUnderContention) {
  // The classic non-atomic counter: any lost update means the wrapper is
  // not actually locking. 8 threads x 20k increments.
  sq::Mutex mu;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        sq::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SqCondVar, WaitWakesOnNotifyWithPredicateLoop) {
  sq::Mutex mu;
  sq::CondVar cv;
  bool ready = false;
  int seen = 0;

  std::thread waiter([&] {
    sq::MutexLock lock(mu);
    while (!ready) cv.wait(mu);  // the repo's canonical wait shape
    seen = 1;
  });
  // Let the waiter reach the wait (not required for correctness — the
  // predicate protects against both orders — but exercises the sleep).
  std::this_thread::sleep_for(10ms);
  {
    sq::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(seen, 1);
}

TEST(SqCondVar, WaitReacquiresMutexBeforeReturning) {
  sq::Mutex mu;
  sq::CondVar cv;
  bool ready = false;
  bool checked_under_lock = false;

  std::thread waiter([&] {
    sq::MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    // If wait() failed to reacquire, this try_lock would succeed
    // (std::mutex is non-recursive, so holding it means failure here).
    checked_under_lock = !mu.try_lock();
    if (!checked_under_lock) mu.unlock();
  });
  {
    sq::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_TRUE(checked_under_lock);
}

TEST(SqCondVar, WaitForTimesOutLikeStd) {
  sq::Mutex mu;
  sq::CondVar cv;
  sq::MutexLock lock(mu);
  const auto start = std::chrono::steady_clock::now();
  const std::cv_status status = cv.wait_for(mu, 20ms);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(status, std::cv_status::timeout);
  EXPECT_GE(elapsed, 15ms);  // small slack for coarse clocks
}

TEST(SqCondVar, WaitUntilReturnsNoTimeoutWhenNotified) {
  sq::Mutex mu;
  sq::CondVar cv;
  bool ready = false;
  std::cv_status last = std::cv_status::timeout;

  std::thread waiter([&] {
    sq::MutexLock lock(mu);
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (!ready) {
      last = cv.wait_until(mu, deadline);
      if (last == std::cv_status::timeout) break;
    }
  });
  std::this_thread::sleep_for(10ms);
  {
    sq::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(last, std::cv_status::no_timeout);
  EXPECT_TRUE(ready);
}

TEST(SqCondVar, NotifyAllWakesEveryWaiter) {
  sq::Mutex mu;
  sq::CondVar cv;
  bool go = false;
  int woke = 0;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      sq::MutexLock lock(mu);
      while (!go) cv.wait(mu);
      ++woke;
    });
  }
  std::this_thread::sleep_for(10ms);
  {
    sq::MutexLock lock(mu);
    go = true;
  }
  cv.notify_all();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke, kWaiters);
}

TEST(SqCondVar, ProducerConsumerQueueDrainsCompletely) {
  // End-to-end shape of every queue in the repo (batch_queue, the CLI's
  // writer thread): N producers, M consumers, explicit predicate loops,
  // close() semantics. Every pushed item must come out exactly once.
  sq::Mutex mu;
  sq::CondVar cv;
  std::vector<int> queue;
  bool closed = false;
  std::atomic<long> consumed_sum{0};
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 5000;

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      long local = 0;
      while (true) {
        int item;
        {
          sq::MutexLock lock(mu);
          while (!closed && queue.empty()) cv.wait(mu);
          if (queue.empty()) break;  // closed and drained
          item = queue.back();
          queue.pop_back();
        }
        local += item;
      }
      consumed_sum += local;
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) {
        {
          sq::MutexLock lock(mu);
          queue.push_back(i);
        }
        cv.notify_one();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  {
    sq::MutexLock lock(mu);
    closed = true;
  }
  cv.notify_all();
  for (std::thread& t : consumers) t.join();

  const long expected = static_cast<long>(kProducers) * kPerProducer *
                        (kPerProducer + 1) / 2;
  EXPECT_EQ(consumed_sum.load(), expected);
}

TEST(SqMutex, AssertHeldCompilesAsNoOp) {
  // assert_held is an annotation-only declaration; under gcc (and at
  // runtime everywhere) it must cost and change nothing.
  sq::Mutex mu;
  sq::MutexLock lock(mu);
  mu.assert_held();
  SUCCEED();
}

}  // namespace
