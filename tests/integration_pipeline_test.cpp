// Full-pipeline integration tests: the complete drug-discovery loop the
// repository exists to support, exercised end to end on small instances —
// dataset -> train -> checkpoint -> restore -> sample -> score -> optimize.
#include <gtest/gtest.h>

#include <cstdio>

#include "chem/qed.h"
#include "chem/sanitize.h"
#include "common/rng.h"
#include "data/io.h"
#include "data/molecule_dataset.h"
#include "models/checkpoint.h"
#include "models/generation.h"
#include "models/latent_optimize.h"
#include "models/metrics.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

namespace sqvae::models {
namespace {

TEST(Integration, TrainCheckpointSampleScoreLoop) {
  Rng rng(31);
  constexpr std::size_t kDim = 16;

  // Dataset of small ligands on 16x16 matrices.
  data::MoleculeGenConfig gen = data::pdbbind_config(static_cast<int>(kDim));
  gen.min_atoms = 8;
  data::MoleculeDataset ligands;
  ligands.matrix_dim = kDim;
  ligands.molecules = data::generate_molecules(gen, 80, rng);
  const data::Dataset features = ligands.features();

  // Train an SQ-VAE briefly.
  ScalableQuantumConfig config;
  config.input_dim = kDim * kDim;
  config.patches = 2;
  config.entangling_layers = 2;
  auto model = make_sq_vae(config, rng);
  TrainConfig train;
  train.epochs = 4;
  train.batch_size = 16;
  train.quantum_lr = 0.03;
  train.classical_lr = 0.01;
  const auto history =
      Trainer(*model, train).fit(features.samples, nullptr, rng);
  EXPECT_LT(history.back().train_mse, history.front().train_mse);

  // Checkpoint, perturb, restore: sampling behaviour must be identical for
  // identical RNG state.
  const std::string path = "/tmp/sqvae_integration_ckpt.txt";
  ASSERT_TRUE(save_checkpoint(*model, path));
  Rng sample_rng_a(99);
  const Matrix samples_a = model->sample(20, sample_rng_a);
  for (ad::Parameter* p : model->quantum_parameters()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) p->value[i] += 0.7;
  }
  ASSERT_TRUE(load_checkpoint(path, *model));
  std::remove(path.c_str());
  Rng sample_rng_b(99);
  const Matrix samples_b = model->sample(20, sample_rng_b);
  for (std::size_t i = 0; i < samples_a.size(); ++i) {
    EXPECT_EQ(samples_a[i], samples_b[i]);
  }

  // Score samples: pipeline must yield only valid molecules and bounded
  // metrics.
  const GenerationMetrics metrics = evaluate_feature_samples(samples_a, kDim);
  EXPECT_EQ(metrics.requested, 20u);
  for (std::size_t r = 0; r < samples_a.rows(); ++r) {
    EXPECT_TRUE(chem::is_valid(decode_sample(samples_a.row(r), kDim)));
  }
  const ExtendedMetrics extended =
      evaluate_extended(samples_a, kDim, ligands.molecules);
  EXPECT_LE(extended.novelty, 1.0);
  EXPECT_GE(extended.internal_diversity, 0.0);
}

TEST(Integration, LatentOptimizationImprovesQed) {
  Rng rng(32);
  // 16x16 matrices: 256 features split into two power-of-two patches.
  constexpr std::size_t kQDim = 16;
  data::MoleculeGenConfig qgen =
      data::pdbbind_config(static_cast<int>(kQDim));
  qgen.min_atoms = 8;
  data::MoleculeDataset qligands;
  qligands.matrix_dim = kQDim;
  qligands.molecules = data::generate_molecules(qgen, 60, rng);
  const data::Dataset qfeatures = qligands.features();

  ScalableQuantumConfig qconfig;
  qconfig.input_dim = kQDim * kQDim;
  qconfig.patches = 2;
  qconfig.entangling_layers = 2;
  auto model = make_sq_vae(qconfig, rng);
  TrainConfig train;
  // Enough epochs that decoded diagonals cross the atom-code rounding
  // threshold (an undertrained decoder emits only empty molecules).
  train.epochs = 10;
  train.batch_size = 16;
  train.quantum_lr = 0.03;
  train.classical_lr = 0.02;
  Trainer(*model, train).fit(qfeatures.samples, nullptr, rng);

  // Lead optimization: seed the search at the encoding of a dataset ligand
  // so that early decodes are molecule-like even for a briefly trained
  // model.
  Matrix lead(1, kQDim * kQDim);
  for (std::size_t c = 0; c < lead.cols(); ++c) {
    lead(0, c) = qfeatures.samples(0, c);
  }
  ad::Tape encode_tape;
  const Matrix lead_latent = encode_tape.value(
      model->encode_mean(encode_tape, encode_tape.constant(lead)));

  LatentOptimizeConfig opt;
  opt.population = 16;
  opt.elites = 4;
  opt.generations = 6;
  opt.initial_sigma = 0.3;
  opt.initial_mu = lead_latent.row(0);
  const LatentOptimizeResult result =
      optimize_latent(*model, qed_objective(kQDim), opt, rng);

  // History is monotone non-decreasing and the optimum beats the first
  // generation's incumbent (or at least ties).
  ASSERT_EQ(result.history.size(), 6u);
  for (std::size_t g = 1; g < result.history.size(); ++g) {
    EXPECT_GE(result.history[g], result.history[g - 1]);
  }
  EXPECT_GE(result.best_score, result.history.front());
  EXPECT_GT(result.best_score, 0.0);
  EXPECT_EQ(result.best_latent.size(), model->latent_dim());
  EXPECT_EQ(result.best_features.size(), kQDim * kQDim);
  // The reported score matches re-decoding the reported features.
  const chem::Molecule best = decode_sample(result.best_features, kQDim);
  EXPECT_NEAR(chem::qed(best), result.best_score, 1e-12);
}

TEST(Integration, GradClipAndLrDecayTrainStably) {
  Rng rng(33);
  Matrix train_data(32, 64);
  for (std::size_t i = 0; i < train_data.size(); ++i) {
    train_data[i] = rng.uniform(0, 4);
  }
  ScalableQuantumConfig config;
  config.input_dim = 64;
  config.patches = 2;
  config.entangling_layers = 2;
  auto model = make_sq_ae(config, rng);
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 16;
  cfg.quantum_lr = 0.1;  // deliberately aggressive
  cfg.classical_lr = 0.1;
  cfg.grad_clip = 1.0;
  cfg.lr_decay = 0.7;
  const auto history =
      Trainer(*model, cfg).fit(train_data, nullptr, rng);
  EXPECT_LT(history.back().train_mse, history.front().train_mse);
  for (const auto& e : history) {
    EXPECT_TRUE(std::isfinite(e.train_mse));
  }
}

TEST(Integration, CsvExportImportTrainsIdentically) {
  // Exporting a dataset to CSV and re-importing must not change training.
  Rng rng(34);
  const auto ds = data::make_qm9_like(24, 8, rng);
  const data::Dataset original = ds.features();
  const std::string path = "/tmp/sqvae_integration_data.csv";
  ASSERT_TRUE(data::save_csv(original, path));
  const auto reloaded = data::load_csv(path);
  std::remove(path.c_str());
  ASSERT_TRUE(reloaded.has_value());
  ASSERT_EQ(reloaded->size(), original.size());
  for (std::size_t i = 0; i < original.samples.size(); ++i) {
    ASSERT_EQ(reloaded->samples[i], original.samples[i]);
  }
}

}  // namespace
}  // namespace sqvae::models
