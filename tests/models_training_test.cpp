// Integration tests: every model family trains (loss decreases) on small
// synthetic data, and the generation pipeline produces valid scored
// molecules — the end-to-end paths behind every figure of the paper.
#include <gtest/gtest.h>

#include "chem/sanitize.h"
#include "common/rng.h"
#include "data/digits.h"
#include "data/molecule_dataset.h"
#include "models/baseline_quantum.h"
#include "models/classical.h"
#include "models/generation.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

namespace sqvae::models {
namespace {

TEST(Trainer, ClassicalAeLossDecreasesOnDigits) {
  Rng rng(1);
  const auto digits = data::make_digits(64, rng);
  const data::Dataset scaled = data::scale(digits.features, 1.0 / 16.0);

  ClassicalAe model(classical_config_64(6), rng);
  TrainConfig config;
  config.epochs = 15;
  config.batch_size = 16;
  config.classical_lr = 0.01;
  Trainer trainer(model, config);
  const auto history = trainer.fit(scaled.samples, nullptr, rng);
  ASSERT_EQ(history.size(), 15u);
  EXPECT_LT(history.back().train_mse, history.front().train_mse * 0.8);
  EXPECT_GT(history.front().seconds, 0.0);
}

TEST(Trainer, ClassicalVaeTracksKl) {
  Rng rng(2);
  const auto digits = data::make_digits(48, rng);
  const data::Dataset scaled = data::scale(digits.features, 1.0 / 16.0);
  ClassicalVae model(classical_config_64(6), rng);
  TrainConfig config;
  config.epochs = 8;
  config.batch_size = 16;
  config.classical_lr = 0.01;
  Trainer trainer(model, config);
  const auto history = trainer.fit(scaled.samples, &scaled.samples, rng);
  EXPECT_LT(history.back().train_mse, history.front().train_mse);
  EXPECT_GT(history.back().test_mse, 0.0);
  // KL is reported (non-negative; may start near zero).
  for (const auto& e : history) EXPECT_GE(e.train_kl, 0.0);
}

TEST(Trainer, FullyQuantumAeLearnsNormalizedQm9) {
  // The Fig. 4(b) setting: F-BQ-AE on L1-normalised molecule matrices.
  Rng rng(3);
  const auto qm9 = data::make_qm9_like(32, 8, rng);
  const data::Dataset normalized = data::l1_normalize_rows(qm9.features());

  auto model = make_fbq_ae(64, 2, rng);
  TrainConfig config;
  config.epochs = 6;
  config.batch_size = 8;
  config.quantum_lr = 0.05;
  Trainer trainer(*model, config);
  const auto history = trainer.fit(normalized.samples, nullptr, rng);
  EXPECT_LT(history.back().train_mse, history.front().train_mse);
}

TEST(Trainer, HybridQuantumAeLearnsOriginalScale) {
  Rng rng(4);
  const auto qm9 = data::make_qm9_like(24, 8, rng);
  auto model = make_hbq_ae(64, 2, rng);
  TrainConfig config;
  config.epochs = 6;
  config.batch_size = 8;
  config.quantum_lr = 0.03;
  config.classical_lr = 0.01;
  Trainer trainer(*model, config);
  const auto history =
      trainer.fit(qm9.features().samples, nullptr, rng);
  EXPECT_LT(history.back().train_mse, history.front().train_mse);
}

TEST(Trainer, ScalableQuantumAeLearns) {
  // Scaled-down patched model (64-dim input, 2 patches) to keep the test
  // fast; exercises the full SQ code path of Figs. 6-8.
  Rng rng(5);
  Matrix data(24, 64);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = rng.uniform(0, 3);

  ScalableQuantumConfig c;
  c.input_dim = 64;
  c.patches = 2;
  c.entangling_layers = 2;
  auto model = make_sq_ae(c, rng);
  TrainConfig config;
  config.epochs = 8;
  config.batch_size = 8;
  config.quantum_lr = 0.03;
  config.classical_lr = 0.01;
  Trainer trainer(*model, config);
  const auto history = trainer.fit(data, nullptr, rng);
  EXPECT_LT(history.back().train_mse, history.front().train_mse);
}

TEST(Trainer, EpochCallbackInvoked) {
  Rng rng(6);
  const auto digits = data::make_digits(16, rng);
  ClassicalAe model(classical_config_64(4), rng);
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 8;
  Trainer trainer(model, config);
  int calls = 0;
  trainer.fit(digits.features.samples, nullptr, rng,
              [&calls](const EpochStats& e) {
                EXPECT_EQ(e.epoch, static_cast<std::size_t>(calls));
                ++calls;
              });
  EXPECT_EQ(calls, 3);
}

TEST(Generation, DecodeSampleSanitizes) {
  // A garbage feature vector decodes to a valid (possibly empty) molecule.
  Rng rng(7);
  std::vector<double> features(64);
  for (double& f : features) f = rng.uniform(-1, 6);
  const chem::Molecule m = decode_sample(features, 8);
  EXPECT_TRUE(chem::is_valid(m));
}

TEST(Generation, DatasetMoleculesScoreAsFullyValid) {
  Rng rng(8);
  const auto ds = data::make_pdbbind_like(30, 32, rng);
  const GenerationMetrics metrics = evaluate_molecules(ds.molecules);
  EXPECT_EQ(metrics.requested, 30u);
  EXPECT_EQ(metrics.valid, 30u);
  EXPECT_GT(metrics.unique, 25u);  // generator rarely repeats drugs
  EXPECT_GT(metrics.mean_qed, 0.0);
  EXPECT_LE(metrics.mean_qed, 1.0);
  EXPECT_GT(metrics.mean_logp, 0.0);
  EXPECT_GT(metrics.mean_sa, 0.0);
  EXPECT_GT(metrics.mean_heavy_atoms, 10.0);
}

TEST(Generation, VaeSamplePipelineEndToEnd) {
  // Untrained VAE samples: shapes work, metrics are bounded; validity may
  // be anything but the pipeline must not crash or emit invalid molecules.
  Rng rng(9);
  ClassicalVae model(classical_config_64(6), rng);
  const GenerationMetrics metrics = sample_and_evaluate(model, 20, 8, rng);
  EXPECT_EQ(metrics.requested, 20u);
  EXPECT_LE(metrics.valid, 20u);
  EXPECT_LE(metrics.unique, metrics.valid);
  EXPECT_GE(metrics.mean_qed, 0.0);
  EXPECT_LE(metrics.mean_qed, 1.0);
}

TEST(Generation, FeatureSamplesFromDatasetRoundTrip) {
  // Encoding the dataset and evaluating the features must reproduce the
  // molecule-level metrics (the decode path inverts the encode path).
  Rng rng(10);
  const auto ds = data::make_qm9_like(15, 8, rng);
  const GenerationMetrics direct = evaluate_molecules(ds.molecules);
  const GenerationMetrics via_features =
      evaluate_feature_samples(ds.features().samples, 8);
  EXPECT_EQ(direct.valid, via_features.valid);
  EXPECT_NEAR(direct.mean_qed, via_features.mean_qed, 1e-9);
  EXPECT_NEAR(direct.mean_logp, via_features.mean_logp, 1e-9);
  EXPECT_NEAR(direct.mean_sa, via_features.mean_sa, 1e-9);
}

TEST(Trainer, HeterogeneousLearningRatesChangeTrajectory) {
  // Same seed, different quantum LR: the training trajectories must
  // diverge — the premise of the Fig. 7 study.
  const auto run = [](double qlr) {
    Rng rng(11);
    Matrix data(16, 16);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = rng.uniform(0, 2);
    auto model = make_hbq_ae(16, 1, rng);
    TrainConfig config;
    config.epochs = 4;
    config.batch_size = 8;
    config.quantum_lr = qlr;
    config.classical_lr = 0.01;
    Trainer trainer(*model, config);
    Rng train_rng(12);
    return trainer.fit(data, nullptr, train_rng).back().train_mse;
  };
  const double slow = run(0.0001);
  const double fast = run(0.1);
  EXPECT_NE(slow, fast);
}

}  // namespace
}  // namespace sqvae::models
