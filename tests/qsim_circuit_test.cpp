#include "qsim/circuit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "qsim/embedding.h"

namespace sqvae::qsim {
namespace {

TEST(Circuit, SlotAccountingTracksHighestSlot) {
  Circuit c(3);
  EXPECT_EQ(c.num_param_slots(), 0);
  c.rx(0, Param::slot(0));
  EXPECT_EQ(c.num_param_slots(), 1);
  c.ry(1, Param::slot(5));
  EXPECT_EQ(c.num_param_slots(), 6);
  c.rz(2, Param::value(1.0));  // constants do not consume slots
  EXPECT_EQ(c.num_param_slots(), 6);
}

TEST(Circuit, RotDecomposesToRzRyRz) {
  // Rot(phi, theta, omega)|psi> == RZ(omega) RY(theta) RZ(phi) |psi>.
  Rng rng(3);
  const double phi = 0.7, theta = -1.1, omega = 2.3;

  Circuit rot_circuit(1);
  rot_circuit.rot(0, Param::value(phi), Param::value(theta),
                  Param::value(omega));
  Statevector a(1);
  a.apply_single(gate_matrix(GateKind::kH, 0), 0);  // non-trivial input
  Statevector b = a;
  run(rot_circuit, {}, a);

  b.apply_single(gate_matrix(GateKind::kRZ, phi), 0);
  b.apply_single(gate_matrix(GateKind::kRY, theta), 0);
  b.apply_single(gate_matrix(GateKind::kRZ, omega), 0);

  for (std::size_t i = 0; i < a.dim(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12);
  }
}

TEST(Circuit, EntanglingLayerParamCount) {
  // 3 params per qubit per layer (paper: L layers of Rot + CNOT ring).
  EXPECT_EQ(Circuit::entangling_layer_param_count(6, 3), 54);
  EXPECT_EQ(Circuit::entangling_layer_param_count(9, 5), 135);
  Circuit c(6);
  const int next = c.strongly_entangling_layers(3, 0);
  EXPECT_EQ(next, 54);
  EXPECT_EQ(c.num_param_slots(), 54);
  // Per layer: 6 Rot = 18 one-parameter gates + 6 CNOTs = 24 ops.
  EXPECT_EQ(c.num_ops(), 3u * 24u);
}

TEST(Circuit, EntanglingLayerOnSingleQubitHasNoCnot) {
  Circuit c(1);
  c.strongly_entangling_layers(2, 0);
  for (const GateOp& op : c.ops()) {
    EXPECT_NE(op.kind, GateKind::kCNOT);
  }
  EXPECT_EQ(c.num_param_slots(), 6);
}

TEST(Circuit, AngleEmbeddingUsesOneSlotPerQubit) {
  Circuit c(5);
  const int next = c.angle_embedding(0);
  EXPECT_EQ(next, 5);
  EXPECT_EQ(c.num_ops(), 5u);
  // Angle embedding is RY rotations: <Z_q> = cos(x_q) from |0...0>.
  const std::vector<double> x = {0.3, -0.9, 1.7, 0.0, 2.2};
  Statevector s = run_from_zero(c, x);
  for (int q = 0; q < 5; ++q) {
    EXPECT_NEAR(s.expectation_z(q), std::cos(x[static_cast<std::size_t>(q)]),
                1e-12);
  }
}

TEST(Circuit, RunFromZeroMatchesManualRun) {
  Rng rng(5);
  Circuit c(3);
  c.strongly_entangling_layers(2, 0);
  std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()));
  for (double& p : params) p = rng.uniform(-3, 3);
  Statevector manual(3);
  run(c, params, manual);
  Statevector direct = run_from_zero(c, params);
  for (std::size_t i = 0; i < manual.dim(); ++i) {
    EXPECT_NEAR(std::abs(manual[i] - direct[i]), 0.0, 1e-14);
  }
}

TEST(Circuit, DaggerUndoesEveryGateKind) {
  Rng rng(8);
  Circuit c(3);
  c.h(0).rx(1, Param::value(0.4)).cnot(0, 2).crz(1, 2, Param::value(-0.9));
  c.cry(2, 0, Param::value(1.3)).s(1).t(2).swap(0, 1).cz(1, 2);
  c.x(0).y(1).z(2).crx(0, 1, Param::value(0.2));

  Statevector s(3);
  // Random initial state.
  for (int q = 0; q < 3; ++q) {
    s.apply_single(gate_matrix(GateKind::kRY, rng.uniform(-3, 3)), q);
    s.apply_single(gate_matrix(GateKind::kRZ, rng.uniform(-3, 3)), q);
  }
  const Statevector original = s;
  run(c, {}, s);
  // Undo in reverse.
  const auto& ops = c.ops();
  for (std::size_t k = ops.size(); k > 0; --k) {
    apply_op_dagger(s, ops[k - 1], {});
  }
  for (std::size_t i = 0; i < s.dim(); ++i) {
    EXPECT_NEAR(std::abs(s[i] - original[i]), 0.0, 1e-12);
  }
}

TEST(Circuit, ToStringListsGatesAndSlots) {
  Circuit c(2);
  c.ry(0, Param::slot(3)).cnot(0, 1).rz(1, Param::value(0.5));
  const std::string dump = c.to_string();
  EXPECT_NE(dump.find("RY t=0 theta=p[3]"), std::string::npos);
  EXPECT_NE(dump.find("CNOT c=0 t=1"), std::string::npos);
  EXPECT_NE(dump.find("RZ t=1 theta=0.5"), std::string::npos);
}

TEST(Embedding, AmplitudeEmbeddingNormalizes) {
  const std::vector<double> x = {3.0, 4.0};
  Statevector s = amplitude_embedding(x, 2);
  EXPECT_TRUE(s.is_normalized());
  EXPECT_NEAR(s[0].real(), 0.6, 1e-12);
  EXPECT_NEAR(s[1].real(), 0.8, 1e-12);
  EXPECT_NEAR(std::abs(s[2]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(s[3]), 0.0, 1e-12);
}

TEST(Embedding, ZeroVectorMapsToGroundState) {
  Statevector s = amplitude_embedding({0.0, 0.0, 0.0}, 2);
  EXPECT_NEAR(s[0].real(), 1.0, 1e-12);
}

TEST(Embedding, BackwardMatchesFiniteDifference) {
  // Scalar function f(x) = sum_j g_j * phi_j(x), phi = x/||x||.
  Rng rng(21);
  std::vector<double> x = {0.5, -1.2, 2.0, 0.3};
  std::vector<double> g = {0.7, 0.1, -0.4, 0.9};
  // state_grad must cover the full 2^n amplitudes; pad with zeros.
  std::vector<double> state_grad = g;
  const std::vector<double> dx = amplitude_embedding_backward(x, state_grad);
  auto f = [&](const std::vector<double>& v) {
    const Statevector s = amplitude_embedding(v, 2);
    double sum = 0.0;
    for (std::size_t j = 0; j < g.size(); ++j) sum += g[j] * s[j].real();
    return sum;
  };
  const double eps = 1e-7;
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<double> xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    EXPECT_NEAR(dx[i], (f(xp) - f(xm)) / (2 * eps), 1e-6) << "feature " << i;
  }
}

TEST(Embedding, ExpectationsZHelper) {
  Statevector s(3);
  s.apply_single(gate_matrix(GateKind::kRY, 0.9), 1);
  const std::vector<double> e = expectations_z(s);
  ASSERT_EQ(e.size(), 3u);
  EXPECT_NEAR(e[0], 1.0, 1e-12);
  EXPECT_NEAR(e[1], std::cos(0.9), 1e-12);
  EXPECT_NEAR(e[2], 1.0, 1e-12);
}

}  // namespace
}  // namespace sqvae::qsim
