// Golden-value equivalence of the compiled CircuitExecutor against the
// gate-by-gate Statevector interpreter, plus fusion-plan structure checks.
// The executor's fused plan must be numerically indistinguishable (well
// below any training tolerance) from qsim::run on every circuit the gate
// alphabet can express, for any slot/constant parameter mix.
#include "qsim/executor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "qsim/circuit.h"
#include "qsim/embedding.h"
#include "qsim/observable.h"

namespace sqvae::qsim {
namespace {

constexpr double kTol = 1e-12;

std::vector<double> random_params(int count, Rng& rng) {
  std::vector<double> p(static_cast<std::size_t>(count));
  for (double& v : p) v = rng.uniform(-std::numbers::pi, std::numbers::pi);
  return p;
}

/// Random normalised state, exercising non-|0...0> initial conditions.
Statevector random_state(int num_qubits, Rng& rng) {
  std::vector<cplx> amps(std::size_t{1} << num_qubits);
  double norm_sq = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.normal(), rng.normal()};
    norm_sq += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (cplx& a : amps) a *= inv;
  return Statevector(std::move(amps));
}

/// Appends one random gate drawn from the full alphabet. Parameterized
/// gates flip a coin between a fresh slot and an inline constant.
void push_random_gate(Circuit& c, int num_qubits, int& next_slot, Rng& rng) {
  const GateKind kinds[] = {
      GateKind::kRX, GateKind::kRY,  GateKind::kRZ,  GateKind::kH,
      GateKind::kX,  GateKind::kY,   GateKind::kZ,   GateKind::kS,
      GateKind::kT,  GateKind::kCNOT, GateKind::kCZ, GateKind::kCRX,
      GateKind::kCRY, GateKind::kCRZ, GateKind::kSWAP};
  const GateKind k = kinds[rng.uniform_index(std::size(kinds))];
  const int target = rng.uniform_int(0, num_qubits - 1);
  int other = rng.uniform_int(0, num_qubits - 2);
  if (other >= target) ++other;
  auto param = [&]() {
    if (rng.bernoulli(0.5)) return Param::slot(next_slot++);
    return Param::value(rng.uniform(-std::numbers::pi, std::numbers::pi));
  };
  switch (k) {
    case GateKind::kRX: c.rx(target, param()); break;
    case GateKind::kRY: c.ry(target, param()); break;
    case GateKind::kRZ: c.rz(target, param()); break;
    case GateKind::kH: c.h(target); break;
    case GateKind::kX: c.x(target); break;
    case GateKind::kY: c.y(target); break;
    case GateKind::kZ: c.z(target); break;
    case GateKind::kS: c.s(target); break;
    case GateKind::kT: c.t(target); break;
    case GateKind::kCNOT: c.cnot(other, target); break;
    case GateKind::kCZ: c.cz(other, target); break;
    case GateKind::kCRX: c.crx(other, target, param()); break;
    case GateKind::kCRY: c.cry(other, target, param()); break;
    case GateKind::kCRZ: c.crz(other, target, param()); break;
    case GateKind::kSWAP: c.swap(other, target); break;
  }
}

void expect_states_close(const Statevector& a, const Statevector& b,
                         double tol = kTol) {
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t i = 0; i < a.dim(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, tol) << "amplitude " << i;
  }
}

TEST(CircuitExecutor, MatchesInterpreterOnRandomizedCircuits) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const int qubits = rng.uniform_int(2, 6);
    const int gates = rng.uniform_int(1, 60);
    Circuit c(qubits);
    int next_slot = 0;
    for (int g = 0; g < gates; ++g) {
      push_random_gate(c, qubits, next_slot, rng);
    }
    const auto params = random_params(c.num_param_slots(), rng);

    Statevector initial = random_state(qubits, rng);
    Statevector naive = initial;
    run(c, params, naive);

    CircuitExecutor exec(c);
    Statevector fused = initial;
    exec.run(params, fused);

    expect_states_close(naive, fused);
  }
}

TEST(CircuitExecutor, MatchesInterpreterOnEntanglingLayerCircuit) {
  Rng rng(42);
  for (const int qubits : {1, 2, 4, 7}) {
    Circuit c(qubits);
    int slot = c.angle_embedding(0);
    c.strongly_entangling_layers(3, slot);
    const auto params = random_params(c.num_param_slots(), rng);

    Statevector naive = run_from_zero(c, params);
    CircuitExecutor exec(c);
    expect_states_close(naive, exec.run_from_zero(params));
  }
}

TEST(CircuitExecutor, FusesSameTargetRunsIntoOneStep) {
  // RY·RZ·RY·RZ on one qubit collapses to a single plan step.
  Circuit c(2);
  c.rz(0, Param::slot(0))
      .ry(0, Param::slot(1))
      .rz(0, Param::value(0.3))
      .ry(0, Param::value(-0.7));
  CircuitExecutor exec(c);
  EXPECT_EQ(exec.num_circuit_ops(), 4u);
  EXPECT_EQ(exec.num_plan_ops(), 1u);

  Rng rng(7);
  const auto params = random_params(c.num_param_slots(), rng);
  expect_states_close(run_from_zero(c, params), exec.run_from_zero(params));
}

TEST(CircuitExecutor, FusesAcrossInterleavedTargets) {
  // Gates alternate between qubits; commuting single-qubit gates must still
  // merge into one fused step per wire.
  Circuit c(2);
  c.ry(0, Param::slot(0))
      .ry(1, Param::slot(1))
      .rz(0, Param::slot(2))
      .rz(1, Param::slot(3))
      .h(0)
      .h(1);
  CircuitExecutor exec(c);
  EXPECT_EQ(exec.num_circuit_ops(), 6u);
  EXPECT_EQ(exec.num_plan_ops(), 2u);

  Rng rng(8);
  const auto params = random_params(c.num_param_slots(), rng);
  expect_states_close(run_from_zero(c, params), exec.run_from_zero(params));
}

TEST(CircuitExecutor, TwoQubitGateCutsFusionOnItsWiresOnly) {
  // CNOT(0,1) must flush pending runs on qubits 0 and 1 but not on qubit 2.
  Circuit c(3);
  c.ry(0, Param::slot(0))
      .ry(2, Param::slot(1))
      .cnot(0, 1)
      .rz(0, Param::slot(2))
      .rz(2, Param::slot(3));
  CircuitExecutor exec(c);
  // Plan: fused RY(q0); CNOT; fused RZ(q0); fused RY·RZ(q2) -> 4 steps.
  EXPECT_EQ(exec.num_plan_ops(), 4u);

  Rng rng(9);
  const auto params = random_params(c.num_param_slots(), rng);
  expect_states_close(run_from_zero(c, params), exec.run_from_zero(params));
}

TEST(CircuitExecutor, EntanglingLayerPlanIsCompact) {
  // One strongly entangling layer after angle embedding: per qubit the
  // embedding RY and the Rot's RZ·RY·RZ fuse into one step, plus the ring
  // of n CNOTs -> 2n plan steps for 5n circuit ops (n >= 2).
  const int qubits = 5;
  Circuit c(qubits);
  int slot = c.angle_embedding(0);
  c.strongly_entangling_layers(1, slot);
  CircuitExecutor exec(c);
  EXPECT_EQ(exec.num_circuit_ops(), static_cast<std::size_t>(5 * qubits));
  EXPECT_EQ(exec.num_plan_ops(), static_cast<std::size_t>(2 * qubits));
}

TEST(CircuitExecutor, RunBatchMatchesPerSampleRuns) {
  Rng rng(43);
  const int qubits = 4;
  Circuit c(qubits);
  int slot = c.angle_embedding(0);
  c.strongly_entangling_layers(2, slot);
  CircuitExecutor exec(c);

  const std::size_t batch = 9;
  std::vector<std::vector<double>> params(batch);
  std::vector<Statevector> states;
  states.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    params[i] = random_params(c.num_param_slots(), rng);
    states.emplace_back(qubits);
  }
  exec.run_batch(params, states);

  for (std::size_t i = 0; i < batch; ++i) {
    expect_states_close(run_from_zero(c, params[i]), states[i]);
  }
}

TEST(CircuitExecutor, AdjointBatchMatchesAdjointGradient) {
  Rng rng(44);
  const int qubits = 3;
  Circuit c(qubits);
  int next_slot = 0;
  for (int g = 0; g < 40; ++g) push_random_gate(c, qubits, next_slot, rng);

  CircuitExecutor exec(c);
  const std::size_t batch = 5;
  std::vector<std::vector<double>> params(batch);
  std::vector<std::vector<double>> diags(batch);
  std::vector<Statevector> initials;
  initials.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    params[i] = random_params(c.num_param_slots(), rng);
    std::vector<double> cot(static_cast<std::size_t>(qubits));
    for (double& v : cot) v = rng.uniform(-1, 1);
    diags[i] = weighted_z_diagonal(qubits, cot);
    initials.push_back(random_state(qubits, rng));
  }

  const auto batched = exec.adjoint_batch(params, initials, diags);
  ASSERT_EQ(batched.size(), batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const AdjointResult ref =
        adjoint_gradient(c, params[i], initials[i], diags[i]);
    EXPECT_NEAR(batched[i].value, ref.value, kTol);
    ASSERT_EQ(batched[i].param_grads.size(), ref.param_grads.size());
    for (std::size_t s = 0; s < ref.param_grads.size(); ++s) {
      EXPECT_NEAR(batched[i].param_grads[s], ref.param_grads[s], 1e-10);
    }
    ASSERT_EQ(batched[i].initial_lambda.size(), ref.initial_lambda.size());
    for (std::size_t j = 0; j < ref.initial_lambda.size(); ++j) {
      EXPECT_NEAR(std::abs(batched[i].initial_lambda[j] -
                           ref.initial_lambda[j]),
                  0.0, 1e-10);
    }
  }
}

TEST(CircuitExecutor, CoalescesAdjacentDiagonalStepsIntoOneRun) {
  // RZ on every wire + CZ ring + CRZ are all diagonal: however the fusion
  // pass interleaves the flushed per-wire RZ steps with the CZs, the whole
  // prefix must collapse into ONE kDiagonal plan step; the trailing RY
  // layer (non-diagonal) stays separate.
  const int qubits = 4;
  Circuit c(qubits);
  for (int q = 0; q < qubits; ++q) c.rz(q, Param::slot(q));
  for (int q = 0; q < qubits; ++q) c.cz(q, (q + 1) % qubits);
  c.crz(0, 2, Param::slot(qubits));
  for (int q = 0; q < qubits; ++q) c.ry(q, Param::slot(qubits + 1 + q));
  CircuitExecutor exec(c);

  EXPECT_EQ(exec.num_diag_steps(), 1u);
  // Plan: one diagonal run + one fused RY per wire.
  EXPECT_EQ(exec.num_plan_ops(), static_cast<std::size_t>(1 + qubits));

  Rng rng(51);
  const auto params = random_params(c.num_param_slots(), rng);
  Statevector initial = random_state(qubits, rng);
  Statevector naive = initial;
  run(c, params, naive);
  Statevector fused = initial;
  exec.run(params, fused);
  expect_states_close(naive, fused);
}

TEST(CircuitExecutor, ConstantDiagonalRunPrebindsItsTable) {
  // A fully-constant diagonal run (S, T, Z, constant RZ/CRZ, CZ) binds
  // nothing per sample and must still match the interpreter.
  Circuit c(3);
  c.s(0).t(1).z(2).rz(0, Param::value(0.4));
  c.cz(0, 1);
  c.crz(1, 2, Param::value(-0.9));
  CircuitExecutor exec(c);
  EXPECT_EQ(exec.num_param_slots(), 0);
  EXPECT_EQ(exec.num_diag_steps(), 1u);
  EXPECT_EQ(exec.num_plan_ops(), 1u);
  expect_states_close(run_from_zero(c, {}), exec.run_from_zero({}));
}

TEST(CircuitExecutor, LoneDiagonalStepIsNotCoalesced) {
  // A single diagonal step between non-diagonal neighbours keeps its
  // specialised kernel — a phase-table pass would only add overhead.
  Circuit c(2);
  c.ry(0, Param::slot(0)).cz(0, 1).ry(1, Param::slot(1));
  CircuitExecutor exec(c);
  EXPECT_EQ(exec.num_diag_steps(), 0u);
  EXPECT_EQ(exec.num_plan_ops(), 3u);
}

TEST(CircuitExecutor, DiagonalRunRebindsPerSample) {
  // Slot-dependent diagonal runs must track their parameters across
  // repeated run() calls and inside run_batch().
  const int qubits = 3;
  Circuit c(qubits);
  for (int q = 0; q < qubits; ++q) c.rz(q, Param::slot(q));
  c.cz(0, 1).cz(1, 2);
  c.h(0);  // stop the run so the plan is diag + H
  CircuitExecutor exec(c);
  ASSERT_EQ(exec.num_diag_steps(), 1u);

  Rng rng(52);
  const std::size_t batch = 6;
  std::vector<std::vector<double>> params(batch);
  std::vector<Statevector> states;
  states.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    params[i] = random_params(c.num_param_slots(), rng);
    states.push_back(random_state(qubits, rng));
  }
  std::vector<Statevector> batched = states;
  exec.run_batch(params, batched);
  for (std::size_t i = 0; i < batch; ++i) {
    Statevector naive = states[i];
    run(c, params[i], naive);
    expect_states_close(naive, batched[i]);
  }
}

TEST(CircuitExecutor, ConstantOnlyCircuitPrebindsEveryStep) {
  // A circuit with no slots re-binds nothing per sample; results must still
  // match the interpreter exactly.
  Circuit c(3);
  c.h(0).t(1).s(2).cnot(0, 1).x(2).cz(1, 2).rx(0, Param::value(0.25));
  CircuitExecutor exec(c);
  EXPECT_EQ(exec.num_param_slots(), 0);
  expect_states_close(run_from_zero(c, {}), exec.run_from_zero({}));
}

}  // namespace
}  // namespace sqvae::qsim
