#include "qsim/qasm.h"

#include <gtest/gtest.h>

namespace sqvae::qsim {
namespace {

TEST(Qasm, HeaderAndRegisterDeclarations) {
  Circuit c(3);
  c.h(0);
  const std::string qasm = to_qasm(c, {});
  EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(qasm.find("include \"qelib1.inc\";"), std::string::npos);
  EXPECT_NE(qasm.find("qreg q[3];"), std::string::npos);
  EXPECT_EQ(qasm.find("creg"), std::string::npos);  // no measurements
}

TEST(Qasm, GateSpellings) {
  Circuit c(3);
  c.h(0).x(1).y(2).z(0).s(1).t(2);
  c.rx(0, Param::value(0.5)).ry(1, Param::value(-1.0)).rz(2, Param::value(2.0));
  c.cnot(0, 1).cz(1, 2).swap(0, 2);
  c.crx(0, 1, Param::value(0.25)).cry(1, 2, Param::value(0.5));
  c.crz(2, 0, Param::value(0.75));
  const std::string qasm = to_qasm(c, {});
  for (const char* expected :
       {"h q[0];", "x q[1];", "y q[2];", "z q[0];", "s q[1];", "t q[2];",
        "rx(0.5) q[0];", "ry(-1) q[1];", "rz(2) q[2];", "cx q[0],q[1];",
        "cz q[1],q[2];", "swap q[0],q[2];", "crx(0.25) q[0],q[1];",
        "cry(0.5) q[1],q[2];", "crz(0.75) q[2],q[0];"}) {
    EXPECT_NE(qasm.find(expected), std::string::npos) << expected;
  }
}

TEST(Qasm, ParameterSlotsAreBoundAtExport) {
  Circuit c(2);
  c.ry(0, Param::slot(0)).crz(0, 1, Param::slot(1));
  const std::string qasm = to_qasm(c, {1.5, -0.5});
  EXPECT_NE(qasm.find("ry(1.5) q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("crz(-0.5) q[0],q[1];"), std::string::npos);
}

TEST(Qasm, MeasurementVariantAppendsCregAndMeasures) {
  Circuit c(2);
  c.h(0).cnot(0, 1);
  const std::string qasm = to_qasm_with_measurements(c, {});
  EXPECT_NE(qasm.find("creg c[2];"), std::string::npos);
  EXPECT_NE(qasm.find("measure q[0] -> c[0];"), std::string::npos);
  EXPECT_NE(qasm.find("measure q[1] -> c[1];"), std::string::npos);
}

TEST(Qasm, EntanglingLayersExportCompletely) {
  Circuit c(4);
  c.strongly_entangling_layers(2, 0);
  std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()),
                             0.1);
  const std::string qasm = to_qasm(c, params);
  // 2 layers x (12 rotations + 4 CNOTs) = 32 gate lines.
  std::size_t lines = 0;
  for (char ch : qasm) {
    if (ch == ';') ++lines;
  }
  // header include + qreg + 32 gates = 35 semicolons (OPENQASM line too).
  EXPECT_EQ(lines, 3u + 32u);
}

}  // namespace
}  // namespace sqvae::qsim
