#include <gtest/gtest.h>

#include "chem/molecule_matrix.h"
#include "chem/rings.h"
#include "chem/sanitize.h"
#include "common/rng.h"

namespace sqvae::chem {
namespace {

Molecule ring_of_carbons(int n, BondType type) {
  Molecule m;
  for (int i = 0; i < n; ++i) m.add_atom(Element::kC);
  for (int i = 0; i < n; ++i) m.set_bond(i, (i + 1) % n, type);
  return m;
}

TEST(Rings, BenzeneHasOneSixRing) {
  const Molecule m = ring_of_carbons(6, BondType::kAromatic);
  const RingInfo info = perceive_rings(m);
  ASSERT_EQ(info.rings.size(), 1u);
  EXPECT_EQ(info.rings[0].size(), 6u);
  EXPECT_EQ(cyclomatic_number(m), 1);
  for (bool f : info.atom_in_ring) EXPECT_TRUE(f);
  for (bool f : info.bond_in_ring) EXPECT_TRUE(f);
  EXPECT_EQ(aromatic_rings(m, info).size(), 1u);
}

TEST(Rings, ChainHasNoRings) {
  Molecule m;
  for (int i = 0; i < 5; ++i) m.add_atom(Element::kC);
  for (int i = 0; i < 4; ++i) m.set_bond(i, i + 1, BondType::kSingle);
  const RingInfo info = perceive_rings(m);
  EXPECT_TRUE(info.rings.empty());
  EXPECT_EQ(cyclomatic_number(m), 0);
  for (bool f : info.atom_in_ring) EXPECT_FALSE(f);
}

TEST(Rings, NaphthaleneHasTwoSixRings) {
  // Two fused aromatic six-rings sharing bond (0, 1).
  Molecule m;
  for (int i = 0; i < 10; ++i) m.add_atom(Element::kC);
  const int ring1[] = {0, 1, 2, 3, 4, 5};
  const int ring2[] = {0, 1, 6, 7, 8, 9};
  for (int i = 0; i < 6; ++i) {
    m.set_bond(ring1[i], ring1[(i + 1) % 6], BondType::kAromatic);
  }
  // Second ring shares edge 0-1: connect 1-6, 6-7, 7-8, 8-9, 9-0.
  m.set_bond(1, 6, BondType::kAromatic);
  m.set_bond(6, 7, BondType::kAromatic);
  m.set_bond(7, 8, BondType::kAromatic);
  m.set_bond(8, 9, BondType::kAromatic);
  m.set_bond(9, 0, BondType::kAromatic);
  (void)ring2;

  EXPECT_EQ(cyclomatic_number(m), 2);
  const RingInfo info = perceive_rings(m);
  EXPECT_EQ(info.rings.size(), 2u);
  EXPECT_EQ(aromatic_rings(m, info).size(), 2u);
  EXPECT_TRUE(m.valences_ok());
}

TEST(Rings, CyclohexaneIsNonAromaticRing) {
  const Molecule m = ring_of_carbons(6, BondType::kSingle);
  const RingInfo info = perceive_rings(m);
  ASSERT_EQ(info.rings.size(), 1u);
  EXPECT_TRUE(aromatic_rings(m, info).empty());
}

TEST(Rings, TriangleIsSmallestRing) {
  const Molecule m = ring_of_carbons(3, BondType::kSingle);
  const RingInfo info = perceive_rings(m);
  ASSERT_EQ(info.rings.size(), 1u);
  EXPECT_EQ(info.rings[0].size(), 3u);
}

TEST(Sanitize, ValidMoleculeUnchanged) {
  const Molecule m = ring_of_carbons(6, BondType::kAromatic);
  SanitizeStats stats;
  const Molecule out = sanitize(m, &stats);
  EXPECT_EQ(out.num_atoms(), 6);
  EXPECT_EQ(stats.valence_demotions + stats.bonds_removed +
                stats.aromatic_demotions + stats.atoms_dropped,
            0);
  EXPECT_TRUE(is_valid(out));
}

TEST(Sanitize, AcyclicAromaticBondDemoted) {
  Molecule m;
  m.add_atom(Element::kC);
  m.add_atom(Element::kC);
  m.set_bond(0, 1, BondType::kAromatic);  // aromatic bond outside any ring
  EXPECT_FALSE(is_valid(m));
  SanitizeStats stats;
  const Molecule out = sanitize(m, &stats);
  EXPECT_EQ(out.bond_between(0, 1), BondType::kSingle);
  EXPECT_GE(stats.aromatic_demotions, 1);
  EXPECT_TRUE(is_valid(out));
}

TEST(Sanitize, OvervalentCarbonRepaired) {
  // C with three double bonds (valence 6) must be demoted to <= 4.
  Molecule m;
  const int c = m.add_atom(Element::kC);
  for (int i = 0; i < 3; ++i) {
    m.set_bond(c, m.add_atom(Element::kC), BondType::kDouble);
  }
  EXPECT_FALSE(m.valences_ok());
  const Molecule out = sanitize(m);
  EXPECT_TRUE(out.valences_ok());
  EXPECT_TRUE(is_valid(out));
}

TEST(Sanitize, FluorineSingleBondOnly) {
  // F double-bonded to C is over-valent; sanitize demotes it.
  Molecule m;
  const int c = m.add_atom(Element::kC);
  const int f = m.add_atom(Element::kF);
  m.set_bond(c, f, BondType::kDouble);
  const Molecule out = sanitize(m);
  EXPECT_TRUE(out.valences_ok());
  EXPECT_EQ(out.bond_between(0, 1), BondType::kSingle);
}

TEST(Sanitize, KeepsLargestFragment) {
  Molecule m;
  // Fragment A: 4-atom chain; fragment B: 2 atoms.
  for (int i = 0; i < 6; ++i) m.add_atom(Element::kC);
  m.set_bond(0, 1, BondType::kSingle);
  m.set_bond(1, 2, BondType::kSingle);
  m.set_bond(2, 3, BondType::kSingle);
  m.set_bond(4, 5, BondType::kSingle);
  SanitizeStats stats;
  const Molecule out = sanitize(m, &stats);
  EXPECT_EQ(out.num_atoms(), 4);
  EXPECT_EQ(stats.atoms_dropped, 2);
  EXPECT_TRUE(is_valid(out));
}

TEST(Sanitize, EmptyMoleculeIsValid) {
  Molecule m;
  EXPECT_TRUE(is_valid(m));
  const Molecule out = sanitize(m);
  EXPECT_TRUE(out.empty());
}

// Property test: sanitize(decode(random matrix)) is always valid. This is
// the exact code path applied to VAE samples in Table II.
class SanitizeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SanitizeFuzz, RandomMatricesAlwaysSanitizeToValidMolecules) {
  sqvae::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t dim = rng.bernoulli(0.5) ? 8 : 16;
    Matrix m(dim, dim);
    for (std::size_t i = 0; i < m.size(); ++i) {
      // Mix of plausible codes and out-of-range garbage.
      m[i] = rng.uniform(-1.0, 6.0);
    }
    const Molecule decoded = decode_molecule(m);
    const Molecule out = sanitize(decoded);
    EXPECT_TRUE(is_valid(out)) << "seed " << GetParam() << " trial " << trial;
    EXPECT_TRUE(out.valences_ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SanitizeFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace sqvae::chem
