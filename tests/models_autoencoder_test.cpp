#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/baseline_quantum.h"
#include "models/classical.h"
#include "models/scalable_quantum.h"

namespace sqvae::models {
namespace {

Matrix random_batch(std::size_t rows, std::size_t cols, Rng& rng, double lo,
                    double hi) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = rng.uniform(lo, hi);
  return m;
}

TEST(ClassicalModels, AeShapesAndParamSplit) {
  Rng rng(1);
  ClassicalAe ae(classical_config_64(6), rng);
  EXPECT_EQ(ae.input_dim(), 64u);
  EXPECT_EQ(ae.latent_dim(), 6u);
  EXPECT_FALSE(ae.is_generative());
  EXPECT_EQ(ae.num_quantum_parameters(), 0u);
  // Encoder 64-32-16-6 + decoder 6-16-32-64.
  const std::size_t encoder = (64 * 32 + 32) + (32 * 16 + 16) + (16 * 6 + 6);
  const std::size_t decoder = (6 * 16 + 16) + (16 * 32 + 32) + (32 * 64 + 64);
  EXPECT_EQ(ae.num_classical_parameters(), encoder + decoder);

  const Matrix batch = random_batch(4, 64, rng, 0, 1);
  const Matrix recon = ae.reconstruct(batch, rng);
  EXPECT_EQ(recon.rows(), 4u);
  EXPECT_EQ(recon.cols(), 64u);
}

TEST(ClassicalModels, VaeEmitsLatentStatsAndSamples) {
  Rng rng(2);
  ClassicalVae vae(classical_config_64(6), rng);
  EXPECT_TRUE(vae.is_generative());

  ad::Tape tape;
  const Matrix batch = random_batch(3, 64, rng, 0, 1);
  ForwardResult fwd = vae.forward(tape, tape.constant(batch), rng);
  ASSERT_TRUE(fwd.mu.has_value());
  ASSERT_TRUE(fwd.logvar.has_value());
  EXPECT_EQ(tape.value(*fwd.mu).cols(), 6u);

  const Matrix samples = vae.sample(7, rng);
  EXPECT_EQ(samples.rows(), 7u);
  EXPECT_EQ(samples.cols(), 64u);
}

TEST(ClassicalModels, VaeHasMorePametersThanAe) {
  Rng rng(3);
  ClassicalAe ae(classical_config_64(6), rng);
  ClassicalVae vae(classical_config_64(6), rng);
  // The VAE replaces one 16->6 head with two: +102 parameters.
  EXPECT_EQ(vae.num_classical_parameters(),
            ae.num_classical_parameters() + (16 * 6 + 6));
}

TEST(BaselineQuantum, TableOneParameterCounts) {
  // Table I: quantum parameter count 108 for all baseline quantum models
  // (two 6-qubit circuits with 3 entangling layers: 2 * 54).
  Rng rng(4);
  auto fbq_ae = make_fbq_ae(64, 3, rng);
  EXPECT_EQ(fbq_ae->num_quantum_parameters(), 108u);
  EXPECT_EQ(fbq_ae->num_classical_parameters(), 0u);  // fully quantum

  auto fbq_vae = make_fbq_vae(64, 3, rng);
  EXPECT_EQ(fbq_vae->num_quantum_parameters(), 108u);
  // mu/logvar heads: 2 * (6*6 + 6) = 84 (Table I classical count).
  EXPECT_EQ(fbq_vae->num_classical_parameters(), 84u);

  auto hbq_ae = make_hbq_ae(64, 3, rng);
  // latent FC 6->6 (42) + output FC 64->64 (4160) = 4202.
  EXPECT_EQ(hbq_ae->num_classical_parameters(), 4202u);

  auto hbq_vae = make_hbq_vae(64, 3, rng);
  // 4202 + 84 = 4286.
  EXPECT_EQ(hbq_vae->num_classical_parameters(), 4286u);
}

TEST(BaselineQuantum, LatentDimIsLogOfInput) {
  Rng rng(5);
  auto m64 = make_fbq_ae(64, 3, rng);
  EXPECT_EQ(m64->latent_dim(), 6u);
  auto m1024 = make_fbq_ae(1024, 3, rng);
  EXPECT_EQ(m1024->latent_dim(), 10u);
}

TEST(BaselineQuantum, FullyQuantumReconstructionIsProbabilityVector) {
  Rng rng(6);
  auto model = make_fbq_ae(16, 2, rng);
  const Matrix batch = random_batch(3, 16, rng, 0, 1);
  const Matrix recon = model->reconstruct(batch, rng);
  EXPECT_EQ(recon.cols(), 16u);
  for (std::size_t r = 0; r < recon.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < recon.cols(); ++c) {
      EXPECT_GE(recon(r, c), 0.0);
      sum += recon(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(BaselineQuantum, HybridReconstructionEscapesSimplex) {
  // The output FC can produce values outside [0,1] — the point of H-BQ.
  Rng rng(7);
  auto model = make_hbq_ae(16, 2, rng);
  const Matrix batch = random_batch(2, 16, rng, 0, 5);
  const Matrix recon = model->reconstruct(batch, rng);
  EXPECT_EQ(recon.cols(), 16u);
}

TEST(BaselineQuantum, VaeSamplesHaveInputShape) {
  Rng rng(8);
  auto model = make_fbq_vae(16, 2, rng);
  const Matrix samples = model->sample(5, rng);
  EXPECT_EQ(samples.rows(), 5u);
  EXPECT_EQ(samples.cols(), 16u);
}

TEST(ScalableQuantum, LsdMatchesPaperTable) {
  // p patches on 1024 features: LSD = p * log2(1024/p).
  EXPECT_EQ(patches_for_lsd_1024(18), 2);
  EXPECT_EQ(patches_for_lsd_1024(32), 4);
  EXPECT_EQ(patches_for_lsd_1024(56), 8);
  EXPECT_EQ(patches_for_lsd_1024(96), 16);

  for (const auto& [patches, lsd] :
       std::vector<std::pair<int, std::size_t>>{
           {2, 18}, {4, 32}, {8, 56}, {16, 96}}) {
    ScalableQuantumConfig c;
    c.input_dim = 1024;
    c.patches = patches;
    EXPECT_EQ(c.latent_dim(), lsd) << patches;
  }
}

TEST(ScalableQuantum, QuantumParameterCount) {
  // p encoder + p decoder circuits, each 3*q*L parameters.
  Rng rng(9);
  ScalableQuantumConfig c;
  c.input_dim = 256;
  c.patches = 4;  // q = log2(64) = 6
  c.entangling_layers = 5;
  auto model = make_sq_ae(c, rng);
  EXPECT_EQ(model->num_quantum_parameters(), 2u * 4u * (3u * 6u * 5u));
  EXPECT_EQ(model->latent_dim(), 24u);
}

TEST(ScalableQuantum, ForwardAndDecodeShapes) {
  Rng rng(10);
  ScalableQuantumConfig c;
  c.input_dim = 64;
  c.patches = 2;  // q = 5, LSD = 10
  c.entangling_layers = 2;
  auto model = make_sq_ae(c, rng);
  EXPECT_EQ(model->latent_dim(), 10u);

  const Matrix batch = random_batch(3, 64, rng, 0, 4);
  const Matrix recon = model->reconstruct(batch, rng);
  EXPECT_EQ(recon.rows(), 3u);
  EXPECT_EQ(recon.cols(), 64u);
}

TEST(ScalableQuantum, VaeSamplesAndKl) {
  Rng rng(11);
  ScalableQuantumConfig c;
  c.input_dim = 64;
  c.patches = 2;
  c.entangling_layers = 1;
  auto model = make_sq_vae(c, rng);
  EXPECT_TRUE(model->is_generative());
  const Matrix samples = model->sample(4, rng);
  EXPECT_EQ(samples.rows(), 4u);
  EXPECT_EQ(samples.cols(), 64u);

  ad::Tape tape;
  LossStats stats;
  const Matrix batch = random_batch(2, 64, rng, 0, 4);
  model->build_loss(tape, batch, rng, &stats);
  EXPECT_GT(stats.total, 0.0);
  EXPECT_GE(stats.kl, 0.0);
  EXPECT_NEAR(stats.total, stats.reconstruction_mse + 0.01 * stats.kl, 1e-9);
}

TEST(Autoencoder, ParamGroupsSplitQuantumAndClassical) {
  Rng rng(12);
  ScalableQuantumConfig c;
  c.input_dim = 64;
  c.patches = 2;
  c.entangling_layers = 1;
  auto model = make_sq_ae(c, rng);
  const auto groups = model->param_groups(0.03, 0.01);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].lr, 0.03);  // quantum first
  EXPECT_EQ(groups[1].lr, 0.01);

  ClassicalAe cae(classical_config_64(6), rng);
  const auto cgroups = cae.param_groups(0.03, 0.01);
  ASSERT_EQ(cgroups.size(), 1u);  // no quantum group
  EXPECT_EQ(cgroups[0].lr, 0.01);
}

}  // namespace
}  // namespace sqvae::models
