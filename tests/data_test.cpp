#include <gtest/gtest.h>

#include <set>

#include "chem/sanitize.h"
#include "data/cifar_gray.h"
#include "data/dataset.h"
#include "data/digits.h"
#include "data/molecule_dataset.h"
#include "data/molecule_gen.h"

namespace sqvae::data {
namespace {

TEST(Dataset, GatherSelectsRows) {
  Dataset ds{Matrix{{1, 2}, {3, 4}, {5, 6}}};
  const Matrix g = ds.gather({2, 0});
  EXPECT_EQ(g(0, 0), 5.0);
  EXPECT_EQ(g(1, 1), 2.0);
}

TEST(Dataset, TrainTestSplitSizes) {
  Rng rng(1);
  Dataset ds{Matrix(100, 4)};
  const TrainTestSplit split = train_test_split(ds, 0.15, rng);
  EXPECT_EQ(split.test.size(), 15u);
  EXPECT_EQ(split.train.size(), 85u);
  EXPECT_EQ(split.train.num_features(), 4u);
}

TEST(Dataset, L1NormalizeRows) {
  Dataset ds{Matrix{{1.0, -3.0}, {0.0, 0.0}, {2.0, 2.0}}};
  const Dataset out = l1_normalize_rows(ds);
  EXPECT_NEAR(out.samples(0, 0), 0.25, 1e-12);
  EXPECT_NEAR(out.samples(0, 1), -0.75, 1e-12);
  EXPECT_EQ(out.samples(1, 0), 0.0);  // zero row untouched
  EXPECT_NEAR(out.samples(2, 0) + out.samples(2, 1), 1.0, 1e-12);
}

TEST(Dataset, BatchesCoverAllIndicesOnce) {
  Rng rng(2);
  const auto batches = make_batches(103, 32, rng);
  EXPECT_EQ(batches.size(), 4u);
  EXPECT_EQ(batches.back().size(), 103u % 32u);
  std::set<std::size_t> seen;
  for (const auto& b : batches) {
    for (std::size_t i : b) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), 103u);
}

TEST(Dataset, ScaleMultipliesFeatures) {
  Dataset ds{Matrix{{2.0, 4.0}}};
  const Dataset out = scale(ds, 0.5);
  EXPECT_EQ(out.samples(0, 0), 1.0);
  EXPECT_EQ(out.samples(0, 1), 2.0);
}

class MoleculeGenValidity
    : public ::testing::TestWithParam<std::tuple<bool, std::uint64_t>> {};

TEST_P(MoleculeGenValidity, AllGeneratedMoleculesAreValid) {
  const auto [pdbbind, seed] = GetParam();
  Rng rng(seed);
  const MoleculeGenConfig config =
      pdbbind ? pdbbind_config(32) : qm9_config(8);
  for (int i = 0; i < 40; ++i) {
    const chem::Molecule m = generate_molecule(config, rng);
    EXPECT_TRUE(chem::is_valid(m));
    EXPECT_GE(m.num_atoms(), 1);
    EXPECT_LE(m.num_atoms(), config.max_atoms);
    // Element alphabet respected.
    for (int a = 0; a < m.num_atoms(); ++a) {
      const chem::Element e = m.atom(a);
      if (!pdbbind) {
        EXPECT_TRUE(e == chem::Element::kC || e == chem::Element::kN ||
                    e == chem::Element::kO);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MoleculeGenValidity,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

TEST(MoleculeGen, PdbbindLigandsAreDrugSized) {
  Rng rng(9);
  const auto config = pdbbind_config(32);
  double atom_sum = 0.0;
  int ring_count = 0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    const chem::Molecule m = generate_molecule(config, rng);
    atom_sum += m.num_atoms();
    for (int a = 0; a < m.num_atoms(); ++a) {
      if (m.is_aromatic_atom(a)) {
        ++ring_count;
        break;
      }
    }
  }
  EXPECT_GT(atom_sum / n, 15.0);  // average ligand size
  EXPECT_GT(ring_count, n / 3);   // most ligands carry an aromatic ring
}

TEST(MoleculeDataset, FeatureShapes) {
  Rng rng(10);
  const MoleculeDataset qm9 = make_qm9_like(20, 8, rng);
  EXPECT_EQ(qm9.molecules.size(), 20u);
  const Dataset f = qm9.features();
  EXPECT_EQ(f.size(), 20u);
  EXPECT_EQ(f.num_features(), 64u);

  const MoleculeDataset pdb = make_pdbbind_like(10, 32, rng);
  EXPECT_EQ(pdb.features().num_features(), 1024u);
}

TEST(MoleculeDataset, FeaturesAreSymmetricMatrices) {
  Rng rng(11);
  const MoleculeDataset ds = make_qm9_like(5, 8, rng);
  const Dataset f = ds.features();
  for (std::size_t r = 0; r < f.size(); ++r) {
    for (std::size_t i = 0; i < 8; ++i) {
      for (std::size_t j = 0; j < 8; ++j) {
        EXPECT_EQ(f.samples(r, i * 8 + j), f.samples(r, j * 8 + i));
      }
    }
  }
}

TEST(Digits, ShapeRangeAndLabels) {
  Rng rng(12);
  const DigitsDataset ds = make_digits(25, rng);
  EXPECT_EQ(ds.features.size(), 25u);
  EXPECT_EQ(ds.features.num_features(), 64u);
  EXPECT_EQ(ds.labels.size(), 25u);
  EXPECT_EQ(ds.labels[0], 0);
  EXPECT_EQ(ds.labels[13], 3);
  for (std::size_t i = 0; i < ds.features.samples.size(); ++i) {
    EXPECT_GE(ds.features.samples[i], 0.0);
    EXPECT_LE(ds.features.samples[i], 16.0);
  }
}

TEST(Digits, TemplatesAreDistinct) {
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      const auto ta = digit_template(a);
      const auto tb = digit_template(b);
      double diff = 0.0;
      for (std::size_t i = 0; i < ta.size(); ++i) {
        diff += std::abs(ta[i] - tb[i]);
      }
      EXPECT_GT(diff, 10.0) << a << " vs " << b;
    }
  }
}

TEST(Digits, AsciiRenderShape) {
  const std::string art = ascii_image(digit_template(3), 8, 16.0);
  // 8 rows of 8 chars + newline each.
  EXPECT_EQ(art.size(), 8u * 9u);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 8);
}

TEST(CifarGray, ShapeRangeAndVariety) {
  Rng rng(13);
  const CifarGrayDataset ds = make_cifar_gray(16, rng);
  EXPECT_EQ(ds.features.size(), 16u);
  EXPECT_EQ(ds.features.num_features(), 1024u);
  for (std::size_t i = 0; i < ds.features.samples.size(); ++i) {
    EXPECT_GE(ds.features.samples[i], 0.0);
    EXPECT_LE(ds.features.samples[i], 1.0);
  }
  // Images of different classes differ substantially.
  double diff = 0.0;
  for (std::size_t c = 0; c < 1024; ++c) {
    diff += std::abs(ds.features.samples(0, c) - ds.features.samples(1, c));
  }
  EXPECT_GT(diff, 10.0);
}

}  // namespace
}  // namespace sqvae::data
