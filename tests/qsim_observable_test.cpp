#include "qsim/observable.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "qsim/circuit.h"
#include "qsim/embedding.h"

namespace sqvae::qsim {
namespace {

TEST(Observable, ZDiagonalSignPattern) {
  const auto d = z_diagonal(3, 1);
  ASSERT_EQ(d.size(), 8u);
  // Bit 1 of the index decides the sign.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(d[i], (i & 2u) ? -1.0 : 1.0) << i;
  }
}

TEST(Observable, WeightedZIsLinearCombination) {
  const std::vector<double> w = {0.5, -1.5, 2.0};
  const auto combined = weighted_z_diagonal(3, w);
  std::vector<std::vector<double>> singles;
  for (int q = 0; q < 3; ++q) singles.push_back(z_diagonal(3, q));
  for (std::size_t i = 0; i < 8; ++i) {
    double expected = 0.0;
    for (int q = 0; q < 3; ++q) {
      expected += w[static_cast<std::size_t>(q)]
                  * singles[static_cast<std::size_t>(q)][i];
    }
    EXPECT_NEAR(combined[i], expected, 1e-15) << i;
  }
}

TEST(Observable, WeightedZExpectationEqualsDotOfExpectations) {
  // <sum_q w_q Z_q> == dot(w, per-qubit <Z>) — the identity that makes the
  // one-sweep vector-Jacobian product valid.
  Rng rng(5);
  Circuit c(4);
  c.strongly_entangling_layers(2, 0);
  std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()));
  for (double& p : params) p = rng.uniform(-3, 3);
  Statevector s = run_from_zero(c, params);

  const std::vector<double> w = {0.3, -0.7, 1.1, 0.2};
  const double combined =
      s.expectation_diag(weighted_z_diagonal(4, w));
  const std::vector<double> e = expectations_z(s);
  double dot = 0.0;
  for (std::size_t q = 0; q < 4; ++q) dot += w[q] * e[q];
  EXPECT_NEAR(combined, dot, 1e-12);
}

TEST(Observable, ProbabilityVjpIsIdentity) {
  const std::vector<double> w = {0.1, 0.2, 0.3, 0.4};
  EXPECT_EQ(probability_vjp_diagonal(w), w);
}

TEST(Observable, ProbabilityVjpExpectationEqualsDotOfProbabilities) {
  Rng rng(6);
  Circuit c(3);
  c.strongly_entangling_layers(2, 0);
  std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()));
  for (double& p : params) p = rng.uniform(-3, 3);
  Statevector s = run_from_zero(c, params);

  std::vector<double> w(8);
  for (double& v : w) v = rng.uniform(-1, 1);
  const double combined = s.expectation_diag(probability_vjp_diagonal(w));
  const auto probs = s.probabilities();
  double dot = 0.0;
  for (std::size_t i = 0; i < 8; ++i) dot += w[i] * probs[i];
  EXPECT_NEAR(combined, dot, 1e-12);
}

}  // namespace
}  // namespace sqvae::qsim
