// Canonicalization and content-hash invariance tests.
//
// The contract under test: canonical_ranks (and therefore to_smiles and
// hash_molecule) must be a pure function of the molecular *graph*, not of
// the order atoms happen to be stored in. The historical bug: tie-breaking
// picked the lowest *input index* from a tied refinement class, so two
// atom orderings of the same symmetric molecule could canonicalize to
// different SMILES. Symmetric molecules (benzene, cyclohexane,
// naphthalene, neopentane) are exactly where refinement leaves ties, so
// they are permuted aggressively here.
#include "chem/mol_hash.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "chem/canonical.h"
#include "chem/molecule.h"
#include "chem/smiles.h"
#include "common/rng.h"
#include "data/molecule_dataset.h"

namespace sqvae::chem {
namespace {

/// The molecule with atoms stored in `perm` order (perm[i] = old index of
/// new atom i). subgraph() on a full permutation is exactly a relabelling.
Molecule permuted(const Molecule& mol, const std::vector<int>& perm) {
  return mol.subgraph(perm);
}

std::vector<int> random_permutation(int n, Rng& rng) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  return perm;
}

/// Canonical SMILES of every random relabelling must match the original's.
void expect_permutation_invariant(const Molecule& mol, std::uint64_t seed,
                                  int trials, const std::string& label) {
  const auto reference = to_smiles(mol);
  ASSERT_TRUE(reference.has_value()) << label;
  const auto reference_hash = hash_molecule(mol);
  ASSERT_TRUE(reference_hash.has_value()) << label;
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    const Molecule shuffled =
        permuted(mol, random_permutation(mol.num_atoms(), rng));
    const auto smiles = to_smiles(shuffled);
    ASSERT_TRUE(smiles.has_value()) << label << " trial " << t;
    EXPECT_EQ(*smiles, *reference) << label << " trial " << t;
    const auto hash = hash_molecule(shuffled);
    ASSERT_TRUE(hash.has_value()) << label << " trial " << t;
    EXPECT_TRUE(*hash == *reference_hash) << label << " trial " << t;
  }
}

TEST(CanonicalInvariance, SymmetricMoleculesUnderRandomPermutation) {
  // High-symmetry graphs: WL-style refinement cannot separate their atoms,
  // so every ranking here is decided by the tie-break path.
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"benzene", "c1ccccc1"},
      {"cyclohexane", "C1CCCCC1"},
      {"naphthalene", "c1ccc2ccccc2c1"},
      {"neopentane", "CC(C)(C)C"},
      {"dimethylbutane", "CC(C)C(C)C"},
      {"cyclobutane", "C1CCC1"},
      {"bipartite-ring", "C1OC1"},
  };
  for (const auto& [label, smiles] : cases) {
    const auto mol = from_smiles(smiles);
    ASSERT_TRUE(mol.has_value()) << label;
    expect_permutation_invariant(*mol, 0x5ee1ull, 40, label);
  }
}

TEST(CanonicalInvariance, ReversedAndRotatedBenzene) {
  // Deterministic worst cases for index-based tie-breaks: every rotation
  // and the reversal of a 6-cycle are automorphisms, so all must give the
  // same canonical string.
  const auto benzene = from_smiles("c1ccccc1");
  ASSERT_TRUE(benzene.has_value());
  const auto reference = to_smiles(*benzene);
  ASSERT_TRUE(reference.has_value());
  for (int rot = 0; rot < 6; ++rot) {
    std::vector<int> perm(6);
    for (int i = 0; i < 6; ++i) {
      perm[static_cast<std::size_t>(i)] = (i + rot) % 6;
    }
    EXPECT_EQ(to_smiles(permuted(*benzene, perm)), reference) << rot;
    std::vector<int> reversed(perm.rbegin(), perm.rend());
    EXPECT_EQ(to_smiles(permuted(*benzene, reversed)), reference)
        << "reversed " << rot;
  }
}

TEST(CanonicalInvariance, GeneratedMoleculesUnderRandomPermutation) {
  // Arbitrary (mostly asymmetric) molecules from both corpus generators.
  Rng gen_rng(7);
  const auto qm9 = data::make_qm9_like(25, 8, gen_rng);
  for (std::size_t i = 0; i < qm9.molecules.size(); ++i) {
    expect_permutation_invariant(qm9.molecules[i], 0xabc0 + i, 8,
                                 "qm9 " + std::to_string(i));
  }
  const auto pdb = data::make_pdbbind_like(8, 20, gen_rng);
  for (std::size_t i = 0; i < pdb.molecules.size(); ++i) {
    expect_permutation_invariant(pdb.molecules[i], 0xdef0 + i, 8,
                                 "pdbbind " + std::to_string(i));
  }
}

TEST(CanonicalInvariance, RanksAreAValidPermutation) {
  Rng rng(11);
  const auto ds = data::make_qm9_like(10, 8, rng);
  for (const auto& mol : ds.molecules) {
    const auto ranks = canonical_ranks(mol);
    ASSERT_EQ(static_cast<int>(ranks.size()), mol.num_atoms());
    std::set<int> seen(ranks.begin(), ranks.end());
    EXPECT_EQ(static_cast<int>(seen.size()), mol.num_atoms());
    if (!ranks.empty()) {
      EXPECT_EQ(*seen.begin(), 0);
      EXPECT_EQ(*seen.rbegin(), mol.num_atoms() - 1);
    }
  }
}

TEST(MolHash, DistinctMoleculesGetDistinctKeys) {
  // Not a collision-resistance proof — just that the hash actually keys on
  // content for a realistic corpus slice.
  Rng rng(13);
  const auto ds = data::make_qm9_like(200, 8, rng);
  std::set<std::string> smiles;
  std::set<std::string> keys;
  for (const auto& mol : ds.molecules) {
    const auto s = to_smiles(mol);
    ASSERT_TRUE(s.has_value());
    smiles.insert(*s);
    const auto h = hash_molecule(mol);
    ASSERT_TRUE(h.has_value());
    keys.insert(hash_hex(*h));
  }
  EXPECT_EQ(keys.size(), smiles.size());
}

TEST(MolHash, HexRoundTripAndOrdering) {
  const MolHash a = hash_bytes("CCO");
  const MolHash b = hash_bytes("CCN");
  EXPECT_FALSE(a == b);
  const std::string hex = hash_hex(a);
  EXPECT_EQ(hex.size(), 32u);
  const auto back = hash_from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == a);
  EXPECT_FALSE(hash_from_hex("zz").has_value());
  EXPECT_FALSE(hash_from_hex(hex.substr(1)).has_value());
  // operator< is a strict weak order usable as the shard index order.
  EXPECT_TRUE((a < b) != (b < a));
  EXPECT_FALSE(a < a);
}

TEST(MolHash, MultiFragmentMoleculeHasNoHash) {
  Molecule fragments;
  fragments.add_atom(Element::kC);
  fragments.add_atom(Element::kO);  // no bond between them
  EXPECT_FALSE(hash_molecule(fragments).has_value());
}

}  // namespace
}  // namespace sqvae::chem
