// Concurrent serving determinism: N client threads hammering the
// InferenceService with fixed per-request seeds must produce bit-identical
// results to a serial replay through serve::execute_single (the contract's
// reference implementation) — for all three simulation backends and every
// endpoint. This suite is also the serving data-race hammer the CI
// ThreadSanitizer lane runs: clients, workers, and a concurrent hot-swap
// all stress the queue/registry/replica machinery under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.h"
#include "serve/service.h"

namespace {

using namespace sqvae;

struct TestRequest {
  serve::Endpoint endpoint;
  std::vector<double> input;
  std::uint64_t seed;
};

serve::ModelSpec sq_vae_spec(qsim::BackendKind backend) {
  serve::ModelSpec spec;
  spec.kind = "sq-vae";
  spec.input_dim = 16;
  spec.patches = 2;
  spec.entangling_layers = 2;
  spec.sim.backend = backend;
  spec.sim.shots = 16;  // trajectories or measurement shots
  spec.sim.noise.gate_error = backend == qsim::BackendKind::kTrajectory
                                  ? 0.05
                                  : 0.0;
  spec.sim.seed = 0xfeedULL;
  return spec;
}

std::vector<double> wave(std::size_t n, std::uint64_t salt) {
  std::vector<double> v(n);
  Rng rng(salt);
  for (double& x : v) x = rng.uniform();
  return v;
}

/// The request mix every client replays: all endpoints, distinct seeds.
std::vector<TestRequest> request_mix(const serve::LoadedModel& loaded,
                                     std::uint64_t client) {
  std::vector<TestRequest> requests;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t seed = client * 100 + i;
    switch (i % 4) {
      case 0:
        requests.push_back({serve::Endpoint::kEncode,
                            wave(loaded.input_dim(), seed), seed});
        break;
      case 1:
        requests.push_back({serve::Endpoint::kReconstruct,
                            wave(loaded.input_dim(), seed), seed});
        break;
      case 2:
        requests.push_back({serve::Endpoint::kDecode,
                            wave(loaded.latent_dim(), seed), seed});
        break;
      case 3:
        requests.push_back({serve::Endpoint::kLatentSample, {}, seed});
        break;
    }
  }
  return requests;
}

void hammer_and_compare(const serve::ModelSpec& spec) {
  std::string error;
  auto model = serve::build_model(spec, &error);
  ASSERT_NE(model, nullptr) << error;
  auto loaded = serve::LoadedModel::from_model(spec, *model);

  constexpr int kClients = 4;

  // Serial replay: the expected value of every (client, request) pair.
  std::vector<std::vector<std::vector<double>>> expected(kClients);
  {
    auto replica = loaded->make_replica();
    ASSERT_NE(replica, nullptr);
    for (int c = 0; c < kClients; ++c) {
      for (const TestRequest& r :
           request_mix(*loaded, static_cast<std::uint64_t>(c))) {
        const serve::InferenceResult result =
            serve::execute_single(*loaded, *replica, r.endpoint, r.input,
                                  r.seed);
        ASSERT_TRUE(result.ok) << result.error;
        expected[c].push_back(result.values);
      }
    }
  }

  // Concurrent run: multi-worker micro-batched service, client threads.
  serve::ModelRegistry registry;
  registry.publish("default", loaded);
  serve::ServeConfig config;
  config.threads = 4;
  config.max_batch = 8;
  serve::InferenceService service(registry, config);

  std::vector<std::vector<std::vector<double>>> actual(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (const TestRequest& r :
           request_mix(*loaded, static_cast<std::uint64_t>(c))) {
        const serve::InferenceResult result =
            service.submit("default", r.endpoint, r.input, r.seed).get();
        if (!result.ok) {
          ++failures;
          return;
        }
        actual[static_cast<std::size_t>(c)].push_back(result.values);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(actual[c].size(), expected[c].size());
    for (std::size_t i = 0; i < expected[c].size(); ++i) {
      EXPECT_EQ(actual[c][i], expected[c][i])
          << "client " << c << " request " << i << " diverged (backend "
          << static_cast<int>(spec.sim.backend) << ")";
    }
  }
}

TEST(ServeDeterminism, StatevectorBackend) {
  hammer_and_compare(sq_vae_spec(qsim::BackendKind::kStatevector));
}

TEST(ServeDeterminism, TrajectoryBackend) {
  hammer_and_compare(sq_vae_spec(qsim::BackendKind::kTrajectory));
}

TEST(ServeDeterminism, ShotSamplingBackend) {
  hammer_and_compare(sq_vae_spec(qsim::BackendKind::kShotSampling));
}

TEST(ServeDeterminism, ClassicalVaeStatevector) {
  serve::ModelSpec spec;
  spec.kind = "classical-vae";
  spec.input_dim = 16;
  spec.latent = 4;
  hammer_and_compare(spec);
}

TEST(ServeDeterminism, SurvivesConcurrentHotSwap) {
  // Requests racing a generation swap must each resolve consistently
  // against *some* published generation — and after the swap settles,
  // against the new one. Primarily a TSan target.
  const serve::ModelSpec spec = sq_vae_spec(qsim::BackendKind::kStatevector);
  std::string error;
  auto model_a = serve::build_model(spec, &error);
  auto model_b = serve::build_model(spec, &error);
  for (ad::Parameter* p : model_b->classical_parameters()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) p->value[i] += 0.125;
  }
  auto loaded_a = serve::LoadedModel::from_model(spec, *model_a);
  auto loaded_b = serve::LoadedModel::from_model(spec, *model_b);

  serve::ModelRegistry registry;
  registry.publish("default", loaded_a);
  serve::ServeConfig config;
  config.threads = 2;
  serve::InferenceService service(registry, config);

  const std::vector<double> x = wave(spec.input_dim, 1);
  std::vector<double> expect_a, expect_b;
  {
    auto ra = loaded_a->make_replica();
    auto rb = loaded_b->make_replica();
    expect_a = serve::execute_single(*loaded_a, *ra,
                                     serve::Endpoint::kEncode, x, 5)
                   .values;
    expect_b = serve::execute_single(*loaded_b, *rb,
                                     serve::Endpoint::kEncode, x, 5)
                   .values;
  }

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    for (int i = 0; i < 50 && !stop.load(); ++i) {
      registry.publish("default", i % 2 == 0 ? loaded_b : loaded_a);
    }
  });
  for (int i = 0; i < 100; ++i) {
    const serve::InferenceResult r = service.encode(x, 5);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.values == expect_a || r.values == expect_b) << i;
  }
  stop.store(true);
  swapper.join();

  registry.publish("default", loaded_b);
  EXPECT_EQ(service.encode(x, 5).values, expect_b);
}

}  // namespace
