#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "chem/smiles.h"
#include "common/rng.h"
#include "data/molecule_dataset.h"
#include "models/checkpoint.h"
#include "models/classical.h"
#include "models/metrics.h"
#include "models/scalable_quantum.h"

namespace sqvae::models {
namespace {

TEST(ExtendedMetrics, TrainingSetAgainstItselfHasZeroNovelty) {
  Rng rng(1);
  const auto ds = data::make_pdbbind_like(25, 32, rng);
  const ExtendedMetrics m =
      evaluate_extended_molecules(ds.molecules, ds.molecules);
  EXPECT_EQ(m.valid, 25u);
  EXPECT_EQ(m.novelty, 0.0);  // every molecule is in the reference set
  EXPECT_NEAR(m.mean_distance_to_train, 0.0, 1e-12);
  EXPECT_GT(m.internal_diversity, 0.0);
  EXPECT_GT(m.scaffold_diversity, 0.0);
}

TEST(ExtendedMetrics, DisjointSetsAreFullyNovel) {
  Rng rng_a(2), rng_b(99);
  const auto set_a = data::make_qm9_like(15, 8, rng_a);
  const auto set_b = data::make_pdbbind_like(15, 32, rng_b);
  // PDBbind-sized molecules (12+ atoms) cannot collide with QM9-sized ones.
  const ExtendedMetrics m =
      evaluate_extended_molecules(set_b.molecules, set_a.molecules);
  EXPECT_EQ(m.novelty, 1.0);
  EXPECT_GT(m.mean_distance_to_train, 0.0);
}

TEST(ExtendedMetrics, FeatureDecodingPath) {
  Rng rng(3);
  const auto train = data::make_pdbbind_like(20, 32, rng);
  const Matrix samples = train.features().samples;
  const ExtendedMetrics m = evaluate_extended(samples, 32, train.molecules);
  EXPECT_EQ(m.requested, 20u);
  EXPECT_EQ(m.valid, 20u);  // dataset features decode back to themselves
  EXPECT_EQ(m.novelty, 0.0);
  EXPECT_GE(m.lipinski_pass_rate, 0.5);  // generator makes drug-sized mols
}

TEST(ExtendedMetrics, EmptyInputs) {
  const ExtendedMetrics m = evaluate_extended_molecules({}, {});
  EXPECT_EQ(m.requested, 0u);
  EXPECT_EQ(m.valid, 0u);
  EXPECT_EQ(m.novelty, 0.0);
}

TEST(Checkpoint, RoundTripIsExact) {
  Rng rng(4);
  ScalableQuantumConfig c;
  c.input_dim = 64;
  c.patches = 2;
  c.entangling_layers = 2;
  auto model = make_sq_vae(c, rng);
  const std::string text = checkpoint_to_text(*model);

  // Perturb every parameter, then restore.
  for (ad::Parameter* p : model->quantum_parameters()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) p->value[i] += 0.5;
  }
  for (ad::Parameter* p : model->classical_parameters()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) p->value[i] -= 0.25;
  }
  ASSERT_TRUE(checkpoint_from_text(text, *model));
  EXPECT_EQ(checkpoint_to_text(*model), text);  // bit-exact round trip
}

TEST(Checkpoint, RestoredModelReproducesOutputs) {
  Rng rng(5);
  ClassicalAe model(classical_config_64(6), rng);
  Matrix batch(2, 64);
  for (std::size_t i = 0; i < batch.size(); ++i) batch[i] = rng.uniform(0, 1);
  const Matrix before = model.reconstruct(batch, rng);
  const std::string text = checkpoint_to_text(model);

  Rng rng2(777);  // differently initialised twin
  ClassicalAe twin(classical_config_64(6), rng2);
  ASSERT_TRUE(checkpoint_from_text(text, twin));
  const Matrix after = twin.reconstruct(batch, rng2);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << i;
  }
}

TEST(Checkpoint, RejectsMismatchedModel) {
  Rng rng(6);
  ClassicalAe small(classical_config_64(4), rng);
  ClassicalAe big(classical_config_64(8), rng);
  const std::string text = checkpoint_to_text(small);
  const std::string big_before = checkpoint_to_text(big);
  EXPECT_FALSE(checkpoint_from_text(text, big));
  // Failed load must leave the target untouched.
  EXPECT_EQ(checkpoint_to_text(big), big_before);
}

TEST(Checkpoint, RejectsCorruptText) {
  Rng rng(7);
  ClassicalAe model(classical_config_64(4), rng);
  EXPECT_FALSE(checkpoint_from_text("", model));
  EXPECT_FALSE(checkpoint_from_text("bogus 1\n3\n", model));
  EXPECT_FALSE(checkpoint_from_text("sqvae-checkpoint 2\n", model));
  std::string truncated = checkpoint_to_text(model);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(checkpoint_from_text(truncated, model));
}

TEST(ExtendedMetrics, UnserializableMoleculeIsNotValid) {
  // A non-empty molecule whose canonical SMILES cannot be produced (two
  // disconnected fragments) must not count as valid: before the fix it
  // inflated `valid` while being excluded from uniqueness/novelty, so the
  // per-valid rates used inconsistent denominators.
  chem::Molecule fragments;
  fragments.add_atom(chem::Element::kC);
  fragments.add_atom(chem::Element::kC);
  ASSERT_FALSE(chem::to_smiles(fragments).has_value());

  Rng rng(10);
  const auto ds = data::make_qm9_like(5, 8, rng);
  std::vector<chem::Molecule> samples = ds.molecules;
  samples.push_back(fragments);

  const ExtendedMetrics m = evaluate_extended_molecules(samples, {});
  EXPECT_EQ(m.requested, 6u);
  EXPECT_EQ(m.valid, 5u);  // the fragment pair is excluded everywhere
  EXPECT_EQ(m.unique, 5u);
  EXPECT_EQ(m.novelty, 1.0);  // all valid molecules novel vs empty train set

  const ExtendedMetrics only_bad =
      evaluate_extended_molecules({fragments}, ds.molecules);
  EXPECT_EQ(only_bad.valid, 0u);
  EXPECT_EQ(only_bad.unique, 0u);
  EXPECT_EQ(only_bad.novelty, 0.0);
  EXPECT_EQ(only_bad.scaffold_diversity, 0.0);
}

TEST(Checkpoint, RejectsTrailingGarbage) {
  Rng rng(11);
  ClassicalAe model(classical_config_64(4), rng);
  const std::string text = checkpoint_to_text(model);
  // Trailing whitespace is fine; any non-whitespace remainder is not —
  // a truncated or concatenated file must fail instead of loading the
  // prefix silently.
  EXPECT_TRUE(checkpoint_from_text(text + " \n\t\n", model));
  EXPECT_FALSE(checkpoint_from_text(text + "0.5", model));
  EXPECT_FALSE(checkpoint_from_text(text + "\ngarbage", model));
  EXPECT_FALSE(checkpoint_from_text(text + text, model));
}

TEST(Checkpoint, V2RoundTripsFullTrainingState) {
  Rng rng(12);
  ScalableQuantumConfig c;
  c.input_dim = 64;
  c.patches = 2;
  c.entangling_layers = 2;
  auto model = make_sq_vae(c, rng);
  auto groups = model->param_groups(0.05, 0.01);
  nn::Adam optimizer(groups);

  // Take real optimizer steps so the m/v moments and step count are
  // non-trivial, and leave the rng mid-stream with a cached normal.
  for (int step = 0; step < 3; ++step) {
    for (const auto& g : groups) {
      for (ad::Parameter* p : g.params) {
        for (std::size_t i = 0; i < p->grad.size(); ++i) {
          p->grad[i] = 0.01 * static_cast<double>(i % 7) - 0.02;
        }
      }
    }
    optimizer.step();
  }
  optimizer.set_lr(0, 0.025);
  Rng train_rng(13);
  for (int i = 0; i < 5; ++i) train_rng.normal();

  TrainState state;
  state.next_epoch = 7;
  state.optimizer = &optimizer;
  state.rng = &train_rng;
  state.has_best = true;
  state.best_epoch = 4;
  state.best_metric = 0.125;
  state.epochs_since_improvement = 2;
  const std::string text = checkpoint_to_text_v2(*model, state);

  // Restore into a differently initialised twin of everything.
  Rng rng2(777);
  auto twin = make_sq_vae(c, rng2);
  auto twin_groups = twin->param_groups(0.05, 0.01);
  nn::Adam twin_optimizer(twin_groups);
  Rng twin_rng(999);
  TrainState loaded;
  loaded.optimizer = &twin_optimizer;
  loaded.rng = &twin_rng;
  ASSERT_TRUE(checkpoint_from_text_v2(text, *twin, loaded));

  EXPECT_EQ(loaded.next_epoch, 7u);
  EXPECT_TRUE(loaded.has_best);
  EXPECT_EQ(loaded.best_epoch, 4u);
  EXPECT_EQ(loaded.best_metric, 0.125);
  EXPECT_EQ(loaded.epochs_since_improvement, 2u);
  EXPECT_EQ(twin_optimizer.step_count(), 3);
  EXPECT_EQ(twin_optimizer.lr(0), 0.025);
  // Re-serialising the twin reproduces the original byte-for-byte: model
  // parameters, Adam moments, and the rng stream (the twin must continue
  // with the exact same draws).
  EXPECT_EQ(checkpoint_to_text_v2(*twin, loaded), text);
  EXPECT_EQ(twin_rng(), train_rng());
  EXPECT_EQ(twin_rng.normal(), train_rng.normal());

  // Strictness: wrong version for each parser, and trailing garbage.
  EXPECT_FALSE(checkpoint_from_text(text, *twin));
  EXPECT_FALSE(
      checkpoint_from_text_v2(checkpoint_to_text(*twin), *twin, loaded));
  EXPECT_FALSE(checkpoint_from_text_v2(text + "x", *twin, loaded));
  std::string truncated = text;
  truncated.resize(truncated.size() - 20);
  EXPECT_FALSE(checkpoint_from_text_v2(truncated, *twin, loaded));
}

TEST(Checkpoint, NonFiniteValuesRoundTrip) {
  // A diverged run writes "nan"/"inf" tokens; the loader must accept them
  // (std::num_get does not) — a checkpoint that saves but can never load
  // again would make --resume useless exactly when diagnosing divergence.
  Rng rng(15);
  ClassicalAe model(classical_config_64(4), rng);
  ad::Parameter* p = model.classical_parameters().front();
  p->value[0] = std::numeric_limits<double>::quiet_NaN();
  p->value[1] = std::numeric_limits<double>::infinity();
  p->value[2] = -std::numeric_limits<double>::infinity();
  const std::string text = checkpoint_to_text(model);

  Rng rng2(16);
  ClassicalAe twin(classical_config_64(4), rng2);
  ASSERT_TRUE(checkpoint_from_text(text, twin));
  const ad::Parameter* tp = twin.classical_parameters().front();
  EXPECT_TRUE(std::isnan(tp->value[0]));
  EXPECT_EQ(tp->value[1], std::numeric_limits<double>::infinity());
  EXPECT_EQ(tp->value[2], -std::numeric_limits<double>::infinity());

  // Same through the v2 path with a NaN best metric.
  TrainState state;
  state.has_best = true;
  state.best_metric = std::numeric_limits<double>::quiet_NaN();
  const std::string v2 = checkpoint_to_text_v2(model, state);
  TrainState loaded;
  ASSERT_TRUE(checkpoint_from_text_v2(v2, twin, loaded));
  EXPECT_TRUE(std::isnan(loaded.best_metric));
}

TEST(Checkpoint, V2FileRoundTripWithoutAttachments) {
  // optimizer/rng are optional: a v2 checkpoint saved without them loads
  // without them (and leaves any attached objects untouched).
  Rng rng(14);
  ClassicalAe model(classical_config_64(4), rng);
  TrainState state;
  state.next_epoch = 2;
  const std::string path = "/tmp/sqvae_checkpoint_v2_test.txt";
  ASSERT_TRUE(save_train_checkpoint(path, model, state));
  TrainState loaded;
  ASSERT_TRUE(load_train_checkpoint(path, model, loaded));
  EXPECT_EQ(loaded.next_epoch, 2u);
  EXPECT_FALSE(loaded.has_best);
  std::remove(path.c_str());
}

TEST(Checkpoint, FileRoundTrip) {
  Rng rng(8);
  ScalableQuantumConfig c;
  c.input_dim = 64;
  c.patches = 2;
  c.entangling_layers = 1;
  auto model = make_sq_ae(c, rng);
  const std::string path = "/tmp/sqvae_checkpoint_test.txt";
  ASSERT_TRUE(save_checkpoint(*model, path));
  const std::string text = checkpoint_to_text(*model);
  for (ad::Parameter* p : model->quantum_parameters()) {
    p->value *= 0.0;
  }
  ASSERT_TRUE(load_checkpoint(path, *model));
  EXPECT_EQ(checkpoint_to_text(*model), text);
  std::remove(path.c_str());
  EXPECT_FALSE(load_checkpoint("/nonexistent/path.txt", *model));
}

}  // namespace
}  // namespace sqvae::models
