#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "data/molecule_dataset.h"
#include "models/checkpoint.h"
#include "models/classical.h"
#include "models/metrics.h"
#include "models/scalable_quantum.h"

namespace sqvae::models {
namespace {

TEST(ExtendedMetrics, TrainingSetAgainstItselfHasZeroNovelty) {
  Rng rng(1);
  const auto ds = data::make_pdbbind_like(25, 32, rng);
  const ExtendedMetrics m =
      evaluate_extended_molecules(ds.molecules, ds.molecules);
  EXPECT_EQ(m.valid, 25u);
  EXPECT_EQ(m.novelty, 0.0);  // every molecule is in the reference set
  EXPECT_NEAR(m.mean_distance_to_train, 0.0, 1e-12);
  EXPECT_GT(m.internal_diversity, 0.0);
  EXPECT_GT(m.scaffold_diversity, 0.0);
}

TEST(ExtendedMetrics, DisjointSetsAreFullyNovel) {
  Rng rng_a(2), rng_b(99);
  const auto set_a = data::make_qm9_like(15, 8, rng_a);
  const auto set_b = data::make_pdbbind_like(15, 32, rng_b);
  // PDBbind-sized molecules (12+ atoms) cannot collide with QM9-sized ones.
  const ExtendedMetrics m =
      evaluate_extended_molecules(set_b.molecules, set_a.molecules);
  EXPECT_EQ(m.novelty, 1.0);
  EXPECT_GT(m.mean_distance_to_train, 0.0);
}

TEST(ExtendedMetrics, FeatureDecodingPath) {
  Rng rng(3);
  const auto train = data::make_pdbbind_like(20, 32, rng);
  const Matrix samples = train.features().samples;
  const ExtendedMetrics m = evaluate_extended(samples, 32, train.molecules);
  EXPECT_EQ(m.requested, 20u);
  EXPECT_EQ(m.valid, 20u);  // dataset features decode back to themselves
  EXPECT_EQ(m.novelty, 0.0);
  EXPECT_GE(m.lipinski_pass_rate, 0.5);  // generator makes drug-sized mols
}

TEST(ExtendedMetrics, EmptyInputs) {
  const ExtendedMetrics m = evaluate_extended_molecules({}, {});
  EXPECT_EQ(m.requested, 0u);
  EXPECT_EQ(m.valid, 0u);
  EXPECT_EQ(m.novelty, 0.0);
}

TEST(Checkpoint, RoundTripIsExact) {
  Rng rng(4);
  ScalableQuantumConfig c;
  c.input_dim = 64;
  c.patches = 2;
  c.entangling_layers = 2;
  auto model = make_sq_vae(c, rng);
  const std::string text = checkpoint_to_text(*model);

  // Perturb every parameter, then restore.
  for (ad::Parameter* p : model->quantum_parameters()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) p->value[i] += 0.5;
  }
  for (ad::Parameter* p : model->classical_parameters()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) p->value[i] -= 0.25;
  }
  ASSERT_TRUE(checkpoint_from_text(text, *model));
  EXPECT_EQ(checkpoint_to_text(*model), text);  // bit-exact round trip
}

TEST(Checkpoint, RestoredModelReproducesOutputs) {
  Rng rng(5);
  ClassicalAe model(classical_config_64(6), rng);
  Matrix batch(2, 64);
  for (std::size_t i = 0; i < batch.size(); ++i) batch[i] = rng.uniform(0, 1);
  const Matrix before = model.reconstruct(batch, rng);
  const std::string text = checkpoint_to_text(model);

  Rng rng2(777);  // differently initialised twin
  ClassicalAe twin(classical_config_64(6), rng2);
  ASSERT_TRUE(checkpoint_from_text(text, twin));
  const Matrix after = twin.reconstruct(batch, rng2);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << i;
  }
}

TEST(Checkpoint, RejectsMismatchedModel) {
  Rng rng(6);
  ClassicalAe small(classical_config_64(4), rng);
  ClassicalAe big(classical_config_64(8), rng);
  const std::string text = checkpoint_to_text(small);
  const std::string big_before = checkpoint_to_text(big);
  EXPECT_FALSE(checkpoint_from_text(text, big));
  // Failed load must leave the target untouched.
  EXPECT_EQ(checkpoint_to_text(big), big_before);
}

TEST(Checkpoint, RejectsCorruptText) {
  Rng rng(7);
  ClassicalAe model(classical_config_64(4), rng);
  EXPECT_FALSE(checkpoint_from_text("", model));
  EXPECT_FALSE(checkpoint_from_text("bogus 1\n3\n", model));
  EXPECT_FALSE(checkpoint_from_text("sqvae-checkpoint 2\n", model));
  std::string truncated = checkpoint_to_text(model);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(checkpoint_from_text(truncated, model));
}

TEST(Checkpoint, FileRoundTrip) {
  Rng rng(8);
  ScalableQuantumConfig c;
  c.input_dim = 64;
  c.patches = 2;
  c.entangling_layers = 1;
  auto model = make_sq_ae(c, rng);
  const std::string path = "/tmp/sqvae_checkpoint_test.txt";
  ASSERT_TRUE(save_checkpoint(*model, path));
  const std::string text = checkpoint_to_text(*model);
  for (ad::Parameter* p : model->quantum_parameters()) {
    p->value *= 0.0;
  }
  ASSERT_TRUE(load_checkpoint(path, *model));
  EXPECT_EQ(checkpoint_to_text(*model), text);
  std::remove(path.c_str());
  EXPECT_FALSE(load_checkpoint("/nonexistent/path.txt", *model));
}

}  // namespace
}  // namespace sqvae::models
