// ResponseCache: content-addressed keying (generation / endpoint /
// payload / seed all participate), LRU eviction under the byte budget,
// in-flight deduplication (one owner, N bit-identical waiters), and the
// InferenceService integration — cached, deduped, and freshly computed
// responses are all bit-identical by the determinism contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "serve/loaded_model.h"
#include "serve/registry.h"
#include "serve/response_cache.h"
#include "serve/service.h"
#include "serve/stats.h"

namespace {

using namespace sqvae;

serve::InferenceResult ok_result(std::vector<double> values) {
  serve::InferenceResult result;
  result.ok = true;
  result.values = std::move(values);
  return result;
}

// ---- keying ---------------------------------------------------------------

TEST(ResponseCacheKey, EveryComponentParticipates) {
  const std::vector<double> x = {0.25, -1.5, 3.0};
  const serve::CacheKey base =
      serve::response_cache_key(7, serve::Endpoint::kEncode, x, 11);

  // Same inputs -> same key (content addressing).
  EXPECT_EQ(base,
            serve::response_cache_key(7, serve::Endpoint::kEncode, x, 11));

  // Registry generation is the model-identity component: a hot swap moves
  // requests onto fresh keys, which is the cache's only invalidation.
  EXPECT_NE(base,
            serve::response_cache_key(8, serve::Endpoint::kEncode, x, 11));
  // Seed participates: stochastic endpoints keyed per seed.
  EXPECT_NE(base,
            serve::response_cache_key(7, serve::Endpoint::kEncode, x, 12));
  // Endpoint participates.
  EXPECT_NE(base,
            serve::response_cache_key(7, serve::Endpoint::kDecode, x, 11));

  // Payload is hashed by bit pattern: any element change moves the key.
  std::vector<double> y = x;
  y[1] = -1.5000000001;
  EXPECT_NE(base,
            serve::response_cache_key(7, serve::Endpoint::kEncode, y, 11));
}

// ---- lookup / publish protocol --------------------------------------------

TEST(ResponseCache, OwnerPublishesThenHits) {
  serve::ServerStats stats;
  serve::ResponseCache cache(1 << 20, &stats);
  const serve::CacheKey key =
      serve::response_cache_key(1, serve::Endpoint::kEncode, {1.0}, 0);

  serve::InferenceResult out;
  EXPECT_EQ(cache.lookup_or_join(key, &out, nullptr),
            serve::ResponseCache::Lookup::kOwner);
  cache.publish(key, ok_result({4.0, 5.0}));

  EXPECT_EQ(cache.lookup_or_join(key, &out, nullptr),
            serve::ResponseCache::Lookup::kHit);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.values, (std::vector<double>{4.0, 5.0}));
  EXPECT_EQ(stats.cache_hits.load(), 1u);
  EXPECT_EQ(stats.cache_misses.load(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), 0u);
}

TEST(ResponseCache, ErrorResultsResolveWaitersButAreNotStored) {
  serve::ResponseCache cache(1 << 20);
  const serve::CacheKey key =
      serve::response_cache_key(1, serve::Endpoint::kEncode, {2.0}, 0);

  serve::InferenceResult out;
  ASSERT_EQ(cache.lookup_or_join(key, &out, nullptr),
            serve::ResponseCache::Lookup::kOwner);
  std::string waiter_error;
  ASSERT_EQ(cache.lookup_or_join(
                key, &out,
                [&](const serve::InferenceResult& r) {
                  waiter_error = r.error;
                }),
            serve::ResponseCache::Lookup::kJoined);

  serve::InferenceResult failed;
  failed.ok = false;
  failed.error = "backend exploded";
  cache.publish(key, failed);
  EXPECT_EQ(waiter_error, "backend exploded");
  EXPECT_EQ(cache.entries(), 0u);  // errors are never cached...
  EXPECT_EQ(cache.lookup_or_join(key, &out, nullptr),
            serve::ResponseCache::Lookup::kOwner);  // ...so retries recompute
}

TEST(ResponseCache, FailResolvesWaitersWithError) {
  serve::ResponseCache cache(1 << 20);
  const serve::CacheKey key =
      serve::response_cache_key(1, serve::Endpoint::kDecode, {3.0}, 0);
  serve::InferenceResult out;
  ASSERT_EQ(cache.lookup_or_join(key, &out, nullptr),
            serve::ResponseCache::Lookup::kOwner);
  std::string seen;
  ASSERT_EQ(cache.lookup_or_join(
                key, &out,
                [&](const serve::InferenceResult& r) { seen = r.error; }),
            serve::ResponseCache::Lookup::kJoined);
  cache.fail(key, "shed after ownership");
  EXPECT_EQ(seen, "shed after ownership");
  EXPECT_EQ(cache.entries(), 0u);
}

// ---- LRU eviction ---------------------------------------------------------

TEST(ResponseCache, EvictsLeastRecentlyUsedWithinByteBudget) {
  serve::ServerStats stats;
  // Budget sized so each of the 16 shards holds roughly one entry
  // (an 8-value entry costs 8*8 + overhead bytes): inserting many distinct
  // keys must evict, and the total byte gauge must respect the budget.
  const std::size_t budget = serve::ResponseCache::kShards * 320;
  serve::ResponseCache cache(budget, &stats);

  const int kInserts = 200;
  serve::CacheKey last{};
  for (int i = 0; i < kInserts; ++i) {
    const serve::CacheKey key = serve::response_cache_key(
        1, serve::Endpoint::kEncode, {static_cast<double>(i)}, 0);
    serve::InferenceResult out;
    ASSERT_EQ(cache.lookup_or_join(key, &out, nullptr),
              serve::ResponseCache::Lookup::kOwner);
    cache.publish(key, ok_result(std::vector<double>(8, 1.0)));
    last = key;
  }

  EXPECT_LE(cache.bytes(), budget);
  EXPECT_LT(cache.entries(), static_cast<std::size_t>(kInserts));
  EXPECT_GT(stats.cache_evictions.load(), 0u);
  // Gauges stay consistent with the introspection accessors.
  EXPECT_EQ(stats.cache_bytes.load(), cache.bytes());
  EXPECT_EQ(stats.cache_entries.load(), cache.entries());
  // The most recent insert into its shard survived.
  serve::InferenceResult out;
  EXPECT_EQ(cache.lookup_or_join(last, &out, nullptr),
            serve::ResponseCache::Lookup::kHit);
}

TEST(ResponseCache, ZeroBudgetStillDedupsInFlight) {
  serve::ResponseCache cache(0);
  const serve::CacheKey key =
      serve::response_cache_key(1, serve::Endpoint::kEncode, {1.0}, 7);
  serve::InferenceResult out;
  ASSERT_EQ(cache.lookup_or_join(key, &out, nullptr),
            serve::ResponseCache::Lookup::kOwner);
  bool resolved = false;
  ASSERT_EQ(cache.lookup_or_join(
                key, &out,
                [&](const serve::InferenceResult&) { resolved = true; }),
            serve::ResponseCache::Lookup::kJoined);
  cache.publish(key, ok_result({1.0}));
  EXPECT_TRUE(resolved);
  EXPECT_EQ(cache.entries(), 0u);  // nothing stored
  EXPECT_EQ(cache.lookup_or_join(key, &out, nullptr),
            serve::ResponseCache::Lookup::kOwner);  // still misses
}

// ---- concurrent dedup -----------------------------------------------------

TEST(ResponseCache, ConcurrentIdenticalRequestsElectOneOwner) {
  serve::ServerStats stats;
  serve::ResponseCache cache(1 << 20, &stats);
  const serve::CacheKey key =
      serve::response_cache_key(3, serve::Endpoint::kReconstruct, {0.5}, 9);
  const std::vector<double> truth = {1.25, -2.5};

  constexpr int kThreads = 8;
  std::atomic<int> owners{0};
  std::atomic<int> identical{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto check = [&](const serve::InferenceResult& r) {
        if (r.ok && r.values == truth) identical.fetch_add(1);
      };
      serve::InferenceResult out;
      const auto verdict = cache.lookup_or_join(key, &out, check);
      if (verdict == serve::ResponseCache::Lookup::kOwner) {
        owners.fetch_add(1);
        cache.publish(key, ok_result(truth));
        identical.fetch_add(1);
      } else if (verdict == serve::ResponseCache::Lookup::kHit) {
        check(out);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Exactly one thread computed; every thread saw the same bits.
  EXPECT_EQ(owners.load(), 1);
  EXPECT_EQ(identical.load(), kThreads);
}

// ---- InferenceService integration ----------------------------------------

TEST(ResponseCache, ServiceRoutesThroughCacheBitIdentically) {
  serve::ModelSpec spec;
  spec.kind = "sq-ae";
  spec.input_dim = 16;
  spec.patches = 2;
  spec.entangling_layers = 2;
  std::string error;
  auto model = serve::build_model(spec, &error);
  ASSERT_NE(model, nullptr) << error;

  serve::ModelRegistry registry;
  registry.publish("default", serve::LoadedModel::from_model(spec, *model));

  serve::ServerStats stats;
  serve::ServeConfig config;
  config.threads = 2;
  config.cache_bytes = 1 << 20;
  serve::InferenceService service(registry, config, &stats);
  ASSERT_NE(service.cache(), nullptr);

  std::vector<double> x(spec.input_dim);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.1 + 0.05 * i;

  const serve::InferenceResult first =
      service.submit("default", serve::Endpoint::kEncode, x, 42).get();
  ASSERT_TRUE(first.ok) << first.error;
  const serve::InferenceResult second =
      service.submit("default", serve::Endpoint::kEncode, x, 42).get();
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(first.values, second.values);  // bit-identical, not approximate
  EXPECT_GE(stats.cache_hits.load(), 1u);

  // A different seed is a different key (stochastic endpoints depend on
  // it), so it must miss.
  const auto hits_before = stats.cache_hits.load();
  service.submit("default", serve::Endpoint::kEncode, x, 43).get();
  EXPECT_EQ(stats.cache_hits.load(), hits_before);

  // Hot-swapping the model bumps the generation: the old entries are
  // unreachable, the same request misses and recomputes.
  registry.publish("default", serve::LoadedModel::from_model(spec, *model));
  service.submit("default", serve::Endpoint::kEncode, x, 42).get();
  EXPECT_EQ(stats.cache_hits.load(), hits_before);

  // Concurrent identical submissions: whatever mix of cache hits,
  // in-flight joins, and fresh executions occurs, every reply is
  // bit-identical to the first.
  constexpr int kBurst = 32;
  std::vector<std::future<serve::InferenceResult>> futures;
  futures.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    futures.push_back(
        service.submit("default", serve::Endpoint::kEncode, x, 42));
  }
  for (auto& f : futures) {
    const serve::InferenceResult r = f.get();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.values, first.values);
  }
}

}  // namespace
