#include <gtest/gtest.h>

#include "chem/descriptors.h"
#include "chem/logp.h"
#include "chem/qed.h"
#include "chem/sa_score.h"
#include "chem/smiles.h"
#include "common/rng.h"
#include "data/molecule_gen.h"

namespace sqvae::chem {
namespace {

Molecule mol(const char* smiles) {
  auto m = from_smiles(smiles);
  EXPECT_TRUE(m.has_value()) << smiles;
  return *m;
}

TEST(Descriptors, BenzeneBasics) {
  const Descriptors d = compute_descriptors(mol("c1ccccc1"));
  EXPECT_NEAR(d.molecular_weight, 78.11, 0.05);
  EXPECT_EQ(d.heavy_atoms, 6);
  EXPECT_EQ(d.hba, 0);
  EXPECT_EQ(d.hbd, 0);
  EXPECT_NEAR(d.tpsa, 0.0, 1e-9);
  EXPECT_EQ(d.rotatable_bonds, 0);
  EXPECT_EQ(d.aromatic_rings, 1);
  EXPECT_EQ(d.rings, 1);
}

TEST(Descriptors, EthanolDonorsAcceptors) {
  const Descriptors d = compute_descriptors(mol("CCO"));
  EXPECT_EQ(d.hba, 1);
  EXPECT_EQ(d.hbd, 1);
  EXPECT_NEAR(d.tpsa, 20.23, 0.01);  // hydroxyl contribution
  // C-O terminal on both heavy ends? C-C-O: the C-O bond has terminal O.
  EXPECT_EQ(d.rotatable_bonds, 0);
}

TEST(Descriptors, GlycineDescriptors) {
  // Glycine NCC(=O)O: N (donor+acceptor), carbonyl O, hydroxyl O.
  const Descriptors d = compute_descriptors(mol("NCC(=O)O"));
  EXPECT_EQ(d.hba, 3);
  EXPECT_EQ(d.hbd, 2);  // NH2 and OH
  EXPECT_GT(d.tpsa, 50.0);
  EXPECT_LT(d.tpsa, 80.0);
}

TEST(Descriptors, RotatableBonds) {
  // Butane C-C-C-C: one central rotatable bond (terminal bonds excluded).
  EXPECT_EQ(compute_descriptors(mol("CCCC")).rotatable_bonds, 1);
  // Hexane: 3 internal bonds.
  EXPECT_EQ(compute_descriptors(mol("CCCCCC")).rotatable_bonds, 3);
  // Cyclohexane: ring bonds are not rotatable.
  EXPECT_EQ(compute_descriptors(mol("C1CCCCC1")).rotatable_bonds, 0);
}

TEST(Descriptors, StructuralAlerts) {
  // Peroxide O-O is an alert.
  EXPECT_GE(structural_alert_count(mol("COOC")), 1);
  // Plain ethanol has none.
  EXPECT_EQ(structural_alert_count(mol("CCO")), 0);
  // Azo N=N flagged.
  EXPECT_GE(structural_alert_count(mol("CN=NC")), 1);
}

TEST(LogP, HydrophobicVsPolarOrdering) {
  // Alkanes are lipophilic; alcohols and amines are less so.
  const double hexane = crippen_logp(mol("CCCCCC"));
  const double ethanol = crippen_logp(mol("CCO"));
  const double glycine = crippen_logp(mol("NCC(=O)O"));
  EXPECT_GT(hexane, ethanol);
  EXPECT_GT(ethanol, glycine);
  EXPECT_GT(hexane, 1.5);   // experimental ~3.9
  EXPECT_LT(glycine, 0.0);  // experimental ~-3.2
}

TEST(LogP, AromaticCarbonsRaiseLogp) {
  EXPECT_GT(crippen_logp(mol("c1ccccc1")), 1.0);  // benzene ~2.1
}

TEST(LogP, NormalizedRange) {
  sqvae::Rng rng(42);
  const auto config = sqvae::data::pdbbind_config(32);
  for (int i = 0; i < 30; ++i) {
    const Molecule m = sqvae::data::generate_molecule(config, rng);
    const double v = normalized_logp(m);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Qed, BoundsAndEmptyMolecule) {
  Molecule empty;
  EXPECT_EQ(qed(empty), 0.0);
  sqvae::Rng rng(43);
  const auto config = sqvae::data::pdbbind_config(32);
  for (int i = 0; i < 30; ++i) {
    const Molecule m = sqvae::data::generate_molecule(config, rng);
    const double v = qed(m);
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
    const double u = qed_unweighted(m);
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Qed, DrugSizedBeatsTinyAndPathological) {
  // A drug-like aromatic amine scaffold should out-score both methane
  // (too small on every descriptor) and a strained peroxide-laden graph.
  const double druglike = qed(mol("Cc1ccccc1NCC(=O)O"));
  const double tiny = qed(mol("C"));
  const double nasty = qed(mol("COOC(F)(F)F"));
  EXPECT_GT(druglike, tiny);
  EXPECT_GT(druglike, nasty);
}

TEST(Qed, DesirabilityPeaksNearDrugTypicalValues) {
  // MW desirability (row 0) should peak around ~300 g/mol and fall off for
  // very small and very large molecules.
  const double at_300 = qed_desirability(0, 300.0);
  EXPECT_GT(at_300, qed_desirability(0, 30.0));
  EXPECT_GT(at_300, qed_desirability(0, 900.0));
  // ALERTS desirability (row 7) decreases with alert count.
  EXPECT_GT(qed_desirability(7, 0.0), qed_desirability(7, 3.0));
}

TEST(SaScore, BoundsAndMonotonicity) {
  const double simple = sa_score(mol("CCO"));
  const double benzene = sa_score(mol("c1ccccc1"));
  // A dense fused polycyclic with quaternary centres is harder.
  sqvae::Rng rng(7);
  EXPECT_GE(simple, 1.0);
  EXPECT_LE(simple, 10.0);
  EXPECT_LE(benzene, 6.0);  // aromatics are common chemistry

  // Normalised score is in [0, 1] and inverts the raw ordering.
  const double ns = normalized_sa_score(mol("CCO"));
  EXPECT_GE(ns, 0.0);
  EXPECT_LE(ns, 1.0);
}

TEST(SaScore, EmptyIsWorst) {
  Molecule empty;
  EXPECT_EQ(sa_score(empty), 10.0);
  EXPECT_EQ(normalized_sa_score(empty), 0.0);
}

TEST(SaScore, MacrocyclePenalized) {
  // 12-membered carbon ring vs cyclohexane.
  Molecule macro;
  for (int i = 0; i < 12; ++i) macro.add_atom(Element::kC);
  for (int i = 0; i < 12; ++i) {
    macro.set_bond(i, (i + 1) % 12, BondType::kSingle);
  }
  const double macro_sa = sa_score(macro);
  const double hexane_ring_sa = sa_score(mol("C1CCCCC1"));
  EXPECT_GT(macro_sa, hexane_ring_sa);
}

// Property sweep: all three Table II metrics stay in bounds over the
// generator's whole output distribution.
class PropertyBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertyBounds, AllMetricsBounded) {
  sqvae::Rng rng(GetParam());
  const auto config = sqvae::data::pdbbind_config(32);
  for (int i = 0; i < 25; ++i) {
    const Molecule m = sqvae::data::generate_molecule(config, rng);
    EXPECT_GE(qed(m), 0.0);
    EXPECT_LE(qed(m), 1.0);
    EXPECT_GE(normalized_logp(m), 0.0);
    EXPECT_LE(normalized_logp(m), 1.0);
    EXPECT_GE(normalized_sa_score(m), 0.0);
    EXPECT_LE(normalized_sa_score(m), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyBounds,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace sqvae::chem
