// Slow-labeled scaling coverage: the amplitude-parallel kernels at
// 17..18-qubit widths (beyond the tier-1 suite's 14..16) and a 20-qubit
// 5-layer strongly-entangling circuit end-to-end through the cache-blocked
// CircuitExecutor, with serial-vs-parallel bitwise identity at every
// tested thread count — the PR's acceptance workload.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numbers>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/rng.h"
#include "qsim/circuit.h"
#include "qsim/executor.h"
#include "qsim/gates.h"
#include "qsim/kernels.h"

namespace sqvae::qsim {
namespace {

constexpr double kTol = 1e-12;

#ifdef _OPENMP
constexpr int kThreadCounts[] = {1, 2, 4};
#else
constexpr int kThreadCounts[] = {1};
#endif

/// Restores the global OpenMP thread count on scope exit.
class ThreadCountGuard {
 public:
  ThreadCountGuard() {
#ifdef _OPENMP
    saved_ = omp_get_max_threads();
#endif
  }
  ~ThreadCountGuard() {
#ifdef _OPENMP
    omp_set_num_threads(saved_);
#endif
  }

 private:
  [[maybe_unused]] int saved_ = 1;
};

void set_threads(int t) {
#ifdef _OPENMP
  omp_set_num_threads(t);
#else
  (void)t;
#endif
}

/// Restores the amplitude-parallel threshold on scope exit.
class ThresholdGuard {
 public:
  ThresholdGuard() : saved_(kernels::parallel_threshold()) {}
  ~ThresholdGuard() { kernels::set_parallel_threshold(saved_); }

 private:
  std::size_t saved_;
};

std::vector<cplx> random_amps(int num_qubits, Rng& rng) {
  std::vector<cplx> amps(std::size_t{1} << num_qubits);
  double norm_sq = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.normal(), rng.normal()};
    norm_sq += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (cplx& a : amps) a *= inv;
  return amps;
}

Mat2 random_unitary(Rng& rng) {
  const Mat2 a = gate_matrix(GateKind::kRZ, rng.uniform(-3.0, 3.0));
  const Mat2 b = gate_matrix(GateKind::kRY, rng.uniform(-3.0, 3.0));
  const Mat2 c = gate_matrix(GateKind::kRX, rng.uniform(-3.0, 3.0));
  return matmul2(a, matmul2(b, c));
}

void expect_amps_bitwise(const std::vector<cplx>& a,
                         const std::vector<cplx>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)), 0);
}

TEST(ScalingSlow, ParallelKernelsBitwiseAtSeventeenAndEighteenQubits) {
  ThreadCountGuard guard;
  Rng rng(601);
  const kernels::KernelTable& par = kernels::parallel_table();
  const kernels::KernelTable& serial = kernels::active();
  for (const int n : {17, 18}) {
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<cplx> ref = random_amps(n, rng);
    const Mat2 m = random_unitary(rng);

    // One exercise per gate class, targeting the top qubits so every call
    // takes the pair-exchange (run-splitting) path.
    const auto apply_all = [&](const kernels::KernelTable& kt,
                               std::vector<cplx>& amps) {
      kt.apply_single(amps.data(), dim, m, n - 1);
      kt.apply_single(amps.data(), dim, m, 0);
      kt.apply_controlled_single(amps.data(), dim, m, 0, n - 1);
      kt.apply_controlled_single(amps.data(), dim, m, n - 1, 1);
      kt.apply_cnot(amps.data(), dim, 1, n - 1);
      kt.apply_cz(amps.data(), dim, 0, n - 1);
      kt.apply_swap(amps.data(), dim, 0, n - 1);
    };

    std::vector<cplx> expected = ref;
    apply_all(serial, expected);
    for (const int t : kThreadCounts) {
      set_threads(t);
      std::vector<cplx> got = ref;
      apply_all(par, got);
      expect_amps_bitwise(expected, got);
    }

    // Reductions: fixed block-ordered accumulation is thread-invariant.
    set_threads(1);
    const double norm1 = par.norm_squared(ref.data(), dim);
    const double z1 = par.expectation_z(ref.data(), dim, n - 1);
    EXPECT_NEAR(norm1, serial.norm_squared(ref.data(), dim), kTol);
    EXPECT_NEAR(z1, serial.expectation_z(ref.data(), dim, n - 1), kTol);
    for (const int t : kThreadCounts) {
      set_threads(t);
      const double norm_t = par.norm_squared(ref.data(), dim);
      const double z_t = par.expectation_z(ref.data(), dim, n - 1);
      EXPECT_EQ(std::memcmp(&norm1, &norm_t, sizeof(double)), 0);
      EXPECT_EQ(std::memcmp(&z1, &z_t, sizeof(double)), 0);
    }
  }
}

TEST(ScalingSlow, TwentyQubitFiveLayerCircuitEndToEnd) {
  // The acceptance workload: a 20-qubit, 5-layer strongly-entangling
  // circuit through the cache-blocked executor. Serial execution and
  // amplitude-parallel execution at every tested thread count must agree
  // bit for bit, and the result must be a normalised state.
  ThreadCountGuard tguard;
  ThresholdGuard guard;
  Rng rng(602);
  const int qubits = 20;
  Circuit c(qubits);
  int slot = c.angle_embedding(0);
  c.strongly_entangling_layers(5, slot);
  std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()));
  for (double& v : params) {
    v = rng.uniform(-std::numbers::pi, std::numbers::pi);
  }

  CircuitExecutor exec(c);
  ASSERT_TRUE(exec.blocked());  // default block_qubits = 15 < 20
  EXPECT_GT(exec.num_block_groups(), 0u);
  EXPECT_GT(exec.num_exchange_steps(), 0u);  // ring CNOTs cross the blocks

  kernels::set_parallel_threshold(SIZE_MAX);  // serial baseline
  const Statevector serial = exec.run_from_zero(params);
  EXPECT_NEAR(serial.norm_squared(), 1.0, 1e-9);

  kernels::set_parallel_threshold(1);  // amplitude-parallel
  for (const int t : kThreadCounts) {
    set_threads(t);
    const Statevector par = exec.run_from_zero(params);
    ASSERT_EQ(par.dim(), serial.dim());
    EXPECT_EQ(std::memcmp(par.amplitudes().data(),
                          serial.amplitudes().data(),
                          serial.dim() * sizeof(cplx)),
              0)
        << "threads=" << t;
  }
}

TEST(ScalingSlow, BlockedExecutorMatchesUnblockedAtEighteenQubits) {
  // Cross-check the blocked schedule against the plain plan at a width
  // where blocking engages by default (18 > 15).
  Rng rng(603);
  const int qubits = 18;
  Circuit c(qubits);
  int slot = c.angle_embedding(0);
  c.strongly_entangling_layers(2, slot);
  std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()));
  for (double& v : params) {
    v = rng.uniform(-std::numbers::pi, std::numbers::pi);
  }

  ExecutorOptions unblocked;
  unblocked.block_qubits = 24;
  CircuitExecutor plain(c, unblocked);
  ASSERT_FALSE(plain.blocked());
  CircuitExecutor blocked(c);
  ASSERT_TRUE(blocked.blocked());

  const Statevector want = plain.run_from_zero(params);
  const Statevector got = blocked.run_from_zero(params);
  ASSERT_EQ(want.dim(), got.dim());
  for (std::size_t i = 0; i < want.dim(); ++i) {
    ASSERT_NEAR(std::abs(want[i] - got[i]), 0.0, kTol) << "amplitude " << i;
  }
}

}  // namespace
}  // namespace sqvae::qsim
